//! The report server: TCP listener, bounded worker pool, bounded ingest
//! queue, sharded accumulation, and snapshot queries.
//!
//! ```text
//! acceptor ──(rendezvous channel: accept blocks while all workers busy)──▶
//!   connection workers ──(bounded IngestQueue: full ⇒ typed Busy reply)──▶
//!     ingest workers ──(fold)──▶ ShardedAccumulator ──(snapshot)──▶ oracle
//! ```
//!
//! Backpressure has exactly two points, both explicit: the acceptor blocks
//! in `send` while every connection worker is busy (TCP's own accept queue
//! then throttles new peers), and a full ingest queue makes the connection
//! worker answer [`Frame::Busy`] with the count of reports it *did* accept
//! — the client re-sends the rest. An accepted report is never dropped:
//! it is either folded or the server was shut down.
//!
//! Queries linearize after ingestion: `Query`/`TopKQuery`/`Checkpoint`
//! first wait until the fold side reaches the accept watermark taken when
//! the request arrived ([`crate::queue::IngestQueue::wait_processed`]), so
//! the reply reflects every report any client had pushed by then. That is
//! what makes loopback estimates *bit-identical* to a batch pipeline run —
//! `crates/sim/tests/server_loopback.rs` proves it for all eight
//! mechanisms.

use crate::conn::{self, FrameAction};
use crate::frame::{Frame, FrameAssembler, FrameError};
use crate::queue::{IngestQueue, WaitOutcome};
use idldp_core::identity::{RunIdentity, TenantId};
use idldp_core::mechanism::Mechanism;
use idldp_core::report::Report;
use idldp_core::report::{ReportData, ReportShape};
use idldp_core::snapshot::{open_store, AccumulatorSnapshot, SnapshotStore, StoreKind};
use idldp_stream::{ShapedAccumulator, ShardedAccumulator};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server construction/runtime errors.
#[derive(Debug)]
pub enum ServerError {
    /// Socket-level failure (bind, accept setup).
    Io(std::io::Error),
    /// The configured checkpoint exists but cannot back this server
    /// (parse failure, width mismatch, or a different run stamp).
    Checkpoint(String),
    /// The mechanism cannot be served over this wire protocol (a
    /// bit-vector report wider than
    /// [`crate::frame::MAX_BIT_REPORT_SLOTS`] — every report would be
    /// undecodable, so startup refuses instead of rejecting per frame).
    Config(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "server i/o: {e}"),
            ServerError::Checkpoint(detail) => write!(f, "server checkpoint: {detail}"),
            ServerError::Config(detail) => write!(f, "server config: {detail}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

/// Which connection engine serves the sockets. The wire protocol, the
/// typed `Busy` backpressure, and query linearization are identical under
/// both — the loopback conformance suite runs every case against each and
/// demands bit-identical estimates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ConnectionEngine {
    /// Thread-per-connection blocking I/O behind a rendezvous acceptor:
    /// one connection worker per live connection, `accept` blocks while
    /// all are busy. Simple and debuggable; concurrency is bounded by
    /// [`ServerConfigBuilder::connection_workers`].
    #[default]
    Blocking,
    /// Readiness reactor (epoll-style): [`ServerConfigBuilder::connection_workers`]
    /// event loops multiplex *all* connections over non-blocking sockets —
    /// thousands of mostly-idle clients cost registrations, not threads.
    Reactor,
}

impl std::str::FromStr for ConnectionEngine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "blocking" => Ok(Self::Blocking),
            "reactor" => Ok(Self::Reactor),
            other => Err(format!(
                "unknown connection engine `{other}` (expected `blocking` or `reactor`)"
            )),
        }
    }
}

impl std::fmt::Display for ConnectionEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Blocking => "blocking",
            Self::Reactor => "reactor",
        })
    }
}

/// One additional tenant (stream) a [`ReportServer`] hosts alongside the
/// default tenant. Each tenant is a fully independent accumulation
/// stream: its own mechanism, its own `ShardedAccumulator`, its own
/// bounded ingest queue (so one hot tenant's `Busy` backpressure cannot
/// starve another), and — when checkpointing is configured — its own
/// tenant-namespaced checkpoint with independent restore.
#[derive(Clone)]
pub struct TenantConfig {
    pub(crate) id: TenantId,
    pub(crate) mechanism: Arc<dyn Mechanism>,
    pub(crate) config_stamp: Option<String>,
    pub(crate) queue_capacity: Option<usize>,
}

impl TenantConfig {
    /// A tenant named `id` served by `mechanism`, with the server-wide
    /// queue capacity and no config stamp.
    pub fn new(id: TenantId, mechanism: Arc<dyn Mechanism>) -> Self {
        Self {
            id,
            mechanism,
            config_stamp: None,
            queue_capacity: None,
        }
    }

    /// Stamps this tenant's run identity with extra free-form config text
    /// (the CLI stamps `mechanism=… m=… eps=… seed=…`), refusing
    /// checkpoint restores under different construction parameters.
    #[must_use]
    pub fn with_config_stamp(mut self, stamp: impl Into<String>) -> Self {
        self.config_stamp = Some(stamp.into());
        self
    }

    /// Overrides the server-wide ingest-queue capacity for this tenant.
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = Some(capacity);
        self
    }

    /// The tenant's name.
    #[must_use]
    pub fn id(&self) -> &TenantId {
        &self.id
    }

    /// A one-line human summary (`name = kind (stamp)`) for startup
    /// banners.
    #[must_use]
    pub fn summary_line(&self) -> String {
        match &self.config_stamp {
            Some(stamp) => format!("{} = {} ({stamp})", self.id, self.mechanism.kind()),
            None => format!("{} = {}", self.id, self.mechanism.kind()),
        }
    }
}

impl std::fmt::Debug for TenantConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantConfig")
            .field("id", &self.id)
            .field("kind", &self.mechanism.kind())
            .field("config_stamp", &self.config_stamp)
            .field("queue_capacity", &self.queue_capacity)
            .finish()
    }
}

/// Tunables of a [`ReportServer`], built through
/// [`ServerConfig::builder`] — the builder validates everything once at
/// [`ServerConfigBuilder::build`], so a `ServerConfig` value is always
/// internally consistent (positive worker counts, positive capacities,
/// distinct tenant names).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    pub(crate) addr: String,
    pub(crate) shards: usize,
    pub(crate) queue_capacity: usize,
    pub(crate) ingest_workers: usize,
    pub(crate) connection_workers: usize,
    pub(crate) engine: ConnectionEngine,
    pub(crate) idle_timeout: Option<Duration>,
    pub(crate) checkpoint_path: Option<PathBuf>,
    pub(crate) checkpoint_store: StoreKind,
    pub(crate) config_stamp: Option<String>,
    pub(crate) tenants: Vec<TenantConfig>,
}

impl ServerConfig {
    /// Starts a builder populated with the validated defaults: loopback
    /// ephemeral bind, [`idldp_stream::DEFAULT_SHARDS`] shards, a 65 536
    /// report queue, 2 ingest workers, 4 connection workers, the blocking
    /// engine, a 60 s idle timeout, no checkpointing, and no extra
    /// tenants.
    #[must_use]
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            config: ServerConfig::default(),
        }
    }

    /// The connection engine this config selects.
    #[must_use]
    pub fn engine(&self) -> ConnectionEngine {
        self.engine
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            shards: idldp_stream::DEFAULT_SHARDS,
            queue_capacity: 65_536,
            ingest_workers: 2,
            connection_workers: 4,
            engine: ConnectionEngine::default(),
            idle_timeout: Some(Duration::from_secs(60)),
            checkpoint_path: None,
            checkpoint_store: StoreKind::default(),
            config_stamp: None,
            tenants: Vec::new(),
        }
    }
}

/// Builder for [`ServerConfig`]. Every setter is chainable;
/// [`ServerConfigBuilder::build`] validates the whole configuration and
/// returns a typed [`ServerError::Config`] instead of letting a zero
/// worker count or a duplicate tenant name reach the server.
#[derive(Clone, Debug)]
pub struct ServerConfigBuilder {
    config: ServerConfig,
}

impl ServerConfigBuilder {
    /// Bind address; port `0` picks an ephemeral port (read it back from
    /// [`ReportServer::local_addr`]).
    #[must_use]
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.config.addr = addr.into();
        self
    }

    /// Accumulator shards per tenant (see
    /// [`idldp_stream::ShardedAccumulator`]).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Per-tenant ingest-queue capacity — the backpressure bound.
    /// Accepted-but-unfolded reports of one tenant never exceed this, and
    /// the bound is accounted per tenant: a hot tenant filling its queue
    /// draws `Busy` on its own connections without consuming another
    /// tenant's admission capacity.
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity;
        self
    }

    /// Fold workers draining each tenant's ingest queue.
    #[must_use]
    pub fn ingest_workers(mut self, workers: usize) -> Self {
        self.config.ingest_workers = workers;
        self
    }

    /// Connection concurrency: blocking-engine workers (the acceptor
    /// blocks once all are busy) or reactor event loops (each
    /// multiplexing any number of connections).
    #[must_use]
    pub fn connection_workers(mut self, workers: usize) -> Self {
        self.config.connection_workers = workers;
        self
    }

    /// Which connection engine serves the sockets.
    #[must_use]
    pub fn engine(mut self, engine: ConnectionEngine) -> Self {
        self.config.engine = engine;
        self
    }

    /// Reap a connection that completes no frame for this long — a silent
    /// peer must not pin a blocking worker (or a reactor registration)
    /// forever. `None` disables reaping.
    #[must_use]
    pub fn idle_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.config.idle_timeout = timeout;
        self
    }

    /// Checkpoint path: restored (if present) at startup, written durably
    /// on every `Checkpoint` control frame — through the [`SnapshotStore`]
    /// backend selected by [`ServerConfigBuilder::checkpoint_store`]. The
    /// default tenant checkpoints at this exact path; every other tenant
    /// at the tenant-namespaced sibling `<path>.tenant-<name>`, restored
    /// independently.
    #[must_use]
    pub fn checkpoint_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.config.checkpoint_path = Some(path.into());
        self
    }

    /// Which [`SnapshotStore`] backend persists checkpoints: `file`
    /// (single atomic rewrite), `sharded` (one file per accumulator
    /// shard plus an fsynced manifest, parallel write/restore), or
    /// `delta` (append-only delta log, O(traffic) per checkpoint). Any
    /// backend transparently restores a checkpoint written by the plain
    /// file format.
    #[must_use]
    pub fn checkpoint_store(mut self, store: StoreKind) -> Self {
        self.config.checkpoint_store = store;
        self
    }

    /// Extra run-identity text stamped into the *default* tenant's
    /// checkpoints and `HelloAck` alongside the mechanism's
    /// kind/shape/width/ε. Embedders put everything that went into
    /// constructing the mechanism here (the CLI stamps `mechanism=… m=…
    /// eps=… seed=…`), so a restart under different parameters refuses
    /// the old counts instead of silently restoring a population
    /// perturbed under a different configuration. Additional tenants
    /// stamp via [`TenantConfig::with_config_stamp`].
    #[must_use]
    pub fn config_stamp(mut self, stamp: impl Into<String>) -> Self {
        self.config.config_stamp = Some(stamp.into());
        self
    }

    /// Adds a tenant (stream) alongside the default tenant, which is
    /// always present and served by the mechanism passed to
    /// [`ReportServer::start`]. A v4 `Hello` selects a tenant by name;
    /// v3 clients land on the default tenant.
    #[must_use]
    pub fn tenant(mut self, tenant: TenantConfig) -> Self {
        self.config.tenants.push(tenant);
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    /// [`ServerError::Config`] when `shards`, `queue_capacity`,
    /// `ingest_workers`, or `connection_workers` is zero, when a
    /// per-tenant queue capacity is zero, or when two tenants (including
    /// the implicit default) share a name.
    pub fn build(self) -> Result<ServerConfig, ServerError> {
        let config = self.config;
        for (what, value) in [
            ("shards", config.shards),
            ("queue_capacity", config.queue_capacity),
            ("ingest_workers", config.ingest_workers),
            ("connection_workers", config.connection_workers),
        ] {
            if value == 0 {
                return Err(ServerError::Config(format!("{what} must be positive")));
            }
        }
        let mut seen = vec![TenantId::default_tenant()];
        for tenant in &config.tenants {
            if seen.contains(&tenant.id) {
                return Err(ServerError::Config(format!(
                    "duplicate tenant `{}` (the default tenant is always present)",
                    tenant.id
                )));
            }
            if tenant.queue_capacity == Some(0) {
                return Err(ServerError::Config(format!(
                    "tenant `{}`: queue_capacity must be positive",
                    tenant.id
                )));
            }
            seen.push(tenant.id.clone());
        }
        Ok(config)
    }
}

/// One tenant's live server-side state: everything that accumulates or
/// persists reports is per tenant, so streams cannot contaminate each
/// other — not through the fold, not through backpressure, and not
/// through a checkpoint.
pub(crate) struct Tenant {
    pub(crate) id: TenantId,
    pub(crate) mechanism: Arc<dyn Mechanism>,
    pub(crate) sink: ShardedAccumulator<ShapedAccumulator>,
    /// This tenant's bounded ingest queue — per-tenant capacity
    /// accounting, so a hot tenant's `Busy` cannot starve another
    /// tenant's admissions, and per-tenant watermarks, so queries
    /// linearize against their own stream only.
    pub(crate) queue: IngestQueue<ReportData>,
    /// This tenant's parsed run identity (sent in `HelloAck`, stamped
    /// into checkpoints).
    pub(crate) identity: RunIdentity,
    /// Reports that failed to fold after acceptance (cannot happen for
    /// reports the connection workers validated; counted defensively).
    fold_failures: AtomicU64,
    /// The open checkpoint store, if checkpointing is configured — at the
    /// tenant-namespaced path. The mutex serializes concurrent
    /// `Checkpoint` frames: the delta backend appends relative to the
    /// snapshot it saved last, so saves must not interleave.
    pub(crate) store: Option<Mutex<Box<dyn SnapshotStore>>>,
}

impl Tenant {
    /// The run-identity stamp appended to this tenant's checkpoints and
    /// sent in its `HelloAck`, refusing restores into a differently
    /// configured stream.
    pub(crate) fn run_line(&self) -> String {
        self.identity.to_string()
    }

    /// Counts a batch that failed to fold after acceptance.
    pub(crate) fn count_fold_failures(&self, reports: u64) {
        self.fold_failures.fetch_add(reports, Ordering::SeqCst);
    }

    /// Waits for everything accepted into this tenant so far to be
    /// folded, then freezes the merged view.
    ///
    /// # Errors
    /// [`Settle::Shutdown`] when the server closed mid-wait (drop the
    /// connection), [`Settle::Refuse`] when the wait cannot complete —
    /// ingest is paused and the watermark needs still-queued reports, so
    /// blocking would park the connection worker until resume (with every
    /// worker parked, even the acceptor wedges). The typed refusal keeps
    /// a paused maintenance window observable instead of hanging clients.
    pub(crate) fn settled_snapshot(&self) -> Result<AccumulatorSnapshot, Settle> {
        let watermark = self.queue.watermark();
        match self.queue.wait_processed(watermark) {
            WaitOutcome::Reached => Ok(self.sink.snapshot()),
            WaitOutcome::Paused => Err(Settle::Refuse(conn::PAUSED_MSG.into())),
            WaitOutcome::Closed => Err(Settle::Shutdown),
        }
    }
}

/// Shared state between the acceptor (or reactor loops), connection
/// workers, and ingest workers.
pub(crate) struct Shared {
    /// The tenant registry. Index 0 is always the default tenant (the
    /// mechanism passed to [`ReportServer::start`]); a connection binds
    /// to exactly one tenant at handshake time and carries its index for
    /// the rest of its life.
    pub(crate) tenants: Vec<Tenant>,
    pub(crate) stop: AtomicBool,
    /// Connections reaped for idling past the configured timeout (either
    /// engine) — observable via [`ReportServer::reaped_connections`].
    pub(crate) reaped: AtomicU64,
    /// High-water mark of any one connection's buffered frame bytes — the
    /// incremental-read memory bound the hostile-peer stress test pins.
    peak_buffered: AtomicUsize,
    /// Live connections, keyed by a monotone id, so shutdown can close
    /// their sockets and unblock workers parked in `read` (blocking
    /// engine; reactor loops close their own connections on stop).
    connections: Mutex<std::collections::HashMap<u64, TcpStream>>,
    next_connection_id: AtomicU64,
}

impl Shared {
    /// Registers a live connection for shutdown teardown.
    fn track(&self, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let id = self.next_connection_id.fetch_add(1, Ordering::SeqCst);
        self.connections
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(id, clone);
        Some(id)
    }

    fn untrack(&self, id: Option<u64>) {
        if let Some(id) = id {
            self.connections
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .remove(&id);
        }
    }

    /// Forcibly closes every live connection (both directions), waking any
    /// worker blocked in a socket read.
    fn close_connections(&self) {
        let connections = self
            .connections
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for stream in connections.values() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

impl Shared {
    /// Folds `bytes` into the per-connection buffered-bytes high-water
    /// mark (see [`ReportServer::peak_buffered_bytes`]).
    pub(crate) fn note_buffered(&self, bytes: usize) {
        self.peak_buffered.fetch_max(bytes, Ordering::Relaxed);
    }

    /// The tenant a connection bound to at handshake time.
    pub(crate) fn tenant(&self, index: usize) -> &Tenant {
        &self.tenants[index]
    }

    /// Resolves a `Hello`'s tenant name to a registry index. The empty
    /// name (every v3 client, and a v4 client that names no tenant) maps
    /// to the default tenant.
    ///
    /// # Errors
    /// A client-visible reject message naming the unknown tenant and the
    /// streams this server does host.
    pub(crate) fn resolve_tenant(&self, name: &str) -> Result<usize, String> {
        if name.is_empty() {
            return Ok(0);
        }
        self.tenants
            .iter()
            .position(|t| t.id.as_str() == name)
            .ok_or_else(|| {
                let hosted: Vec<&str> = self.tenants.iter().map(|t| t.id.as_str()).collect();
                format!(
                    "unknown tenant `{name}` (this server hosts: {})",
                    hosted.join(", ")
                )
            })
    }
}

/// The run-identity stamp, computable before the internal shared state exists
/// (startup restores the checkpoint against it prior to spawning
/// anything). Public because it is also the fleet-identity contract: the
/// server sends this exact line in its `HelloAck`, and a coordinator
/// computes its *expected* line through this same function to refuse
/// collectors running a different mechanism/m/ε/seed config. A thin
/// wrapper over [`RunIdentity::for_mechanism`] — the one typed builder
/// every tier shares, so the identity format can never drift between the
/// server, the coordinator, and the checkpoint stores.
pub fn run_identity_line(mechanism: &dyn Mechanism, config_stamp: Option<&str>) -> String {
    RunIdentity::for_mechanism(RunIdentity::PRODUCER_SERVE, mechanism, config_stamp).to_string()
}

/// Why a settled view could not be produced.
pub(crate) enum Settle {
    /// The server is shutting down — drop the connection.
    Shutdown,
    /// A typed, client-visible reason (paused ingest, oracle failure).
    #[allow(dead_code)] // carried for symmetry; `snapshot()` discards it
    Refuse(String),
}

/// A running ingestion service. Dropping the handle leaks the threads;
/// call [`ReportServer::shutdown`] for an orderly stop.
pub struct ReportServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// Reactor-engine pollers, notified on shutdown so the event loops
    /// observe the stop flag (empty under the blocking engine).
    #[cfg(unix)]
    pollers: Vec<Arc<polling::Poller>>,
}

impl ReportServer {
    /// Binds, restores every tenant's checkpoint if one exists, and
    /// spawns the acceptor, connection-worker, and ingest-worker threads.
    /// `mechanism` serves the default tenant; additional tenants come
    /// from [`ServerConfigBuilder::tenant`].
    ///
    /// # Errors
    /// Bind failures, unusable checkpoints, invalid configurations
    /// (builder-validated fields re-checked here, so a hand-rolled
    /// `Default` config is held to the same rules), and a
    /// [`ServerError::Config`] for a bit-vector mechanism wider than the
    /// wire protocol's [`crate::frame::MAX_BIT_REPORT_SLOTS`] (every
    /// report would be undecodable — fail at startup, not per frame).
    pub fn start(mechanism: Arc<dyn Mechanism>, config: ServerConfig) -> Result<Self, ServerError> {
        // Re-validate: `Default` and `Clone` can produce a config without
        // going through the builder.
        let config = ServerConfigBuilder { config }.build()?;

        let mut tenants = Vec::with_capacity(1 + config.tenants.len());
        tenants.push(Self::start_tenant(
            TenantConfig {
                id: TenantId::default_tenant(),
                mechanism,
                config_stamp: config.config_stamp.clone(),
                queue_capacity: None,
            },
            &config,
        )?);
        for tenant in &config.tenants {
            tenants.push(Self::start_tenant(tenant.clone(), &config)?);
        }

        let ingest_workers = config.ingest_workers;
        let shared = Arc::new(Shared {
            tenants,
            stop: AtomicBool::new(false),
            reaped: AtomicU64::new(0),
            peak_buffered: AtomicUsize::new(0),
            connections: Mutex::new(std::collections::HashMap::new()),
            next_connection_id: AtomicU64::new(0),
        });

        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;

        // Fold workers are per tenant: each tenant's queue drains
        // independently, so a paused or saturated tenant cannot stall
        // another tenant's fold pipeline.
        let mut workers = Vec::new();
        for tenant_index in 0..shared.tenants.len() {
            for _ in 0..ingest_workers {
                let shared = Arc::clone(&shared);
                workers.push(std::thread::spawn(move || {
                    ingest_worker(&shared, tenant_index)
                }));
            }
        }

        let mut acceptor = None;
        #[cfg(unix)]
        let mut pollers = Vec::new();
        match config.engine {
            ConnectionEngine::Blocking => {
                // Rendezvous handoff: `send` blocks until a connection
                // worker is free, which in turn blocks `accept` —
                // bounded-pool backpressure without an unbounded
                // pending-connection buffer.
                let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(0);
                let conn_rx = Arc::new(Mutex::new(conn_rx));
                for _ in 0..config.connection_workers {
                    let shared = Arc::clone(&shared);
                    let conn_rx = Arc::clone(&conn_rx);
                    let idle = config.idle_timeout;
                    workers.push(std::thread::spawn(move || loop {
                        let stream = {
                            let guard = conn_rx
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                            guard.recv()
                        };
                        match stream {
                            Ok(stream) => handle_connection(stream, &shared, idle),
                            Err(_) => return, // acceptor gone: shutdown
                        }
                    }));
                }

                acceptor = Some({
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || {
                        for stream in listener.incoming() {
                            if shared.stop.load(Ordering::SeqCst) {
                                return; // conn_tx drops here, stopping the workers
                            }
                            match stream {
                                Ok(stream) => {
                                    if conn_tx.send(stream).is_err() {
                                        return;
                                    }
                                }
                                Err(_) => continue,
                            }
                        }
                    })
                });
            }
            ConnectionEngine::Reactor => {
                #[cfg(unix)]
                {
                    let handle = crate::reactor::spawn(
                        listener,
                        Arc::clone(&shared),
                        config.connection_workers,
                        config.idle_timeout,
                    )
                    .map_err(|e| {
                        if e.kind() == std::io::ErrorKind::Unsupported {
                            ServerError::Config(format!("reactor engine unavailable: {e}"))
                        } else {
                            ServerError::Io(e)
                        }
                    })?;
                    pollers = handle.pollers;
                    workers.extend(handle.threads);
                }
                #[cfg(not(unix))]
                {
                    drop(listener);
                    return Err(ServerError::Config(
                        "reactor engine requires a unix readiness backend".into(),
                    ));
                }
            }
        }

        Ok(Self {
            addr,
            shared,
            acceptor,
            workers,
            #[cfg(unix)]
            pollers,
        })
    }

    /// Builds one tenant's live state: accumulator, bounded queue, run
    /// identity, and — when checkpointing is configured — the open store
    /// at the tenant-namespaced path, with the existing checkpoint (if
    /// any) restored and identity-checked.
    fn start_tenant(tenant: TenantConfig, config: &ServerConfig) -> Result<Tenant, ServerError> {
        let TenantConfig {
            id,
            mechanism,
            config_stamp,
            queue_capacity,
        } = tenant;
        if matches!(mechanism.report_shape(), ReportShape::Bits)
            && mechanism.report_len() > crate::frame::MAX_BIT_REPORT_SLOTS
        {
            return Err(ServerError::Config(format!(
                "tenant `{id}`: bit-vector mechanism width {} exceeds the wire cap of {} slots",
                mechanism.report_len(),
                crate::frame::MAX_BIT_REPORT_SLOTS
            )));
        }
        let identity = RunIdentity::for_mechanism(
            RunIdentity::PRODUCER_SERVE,
            mechanism.as_ref(),
            config_stamp.as_deref(),
        );
        let sink = ShardedAccumulator::new(
            ShapedAccumulator::for_mechanism(mechanism.as_ref()),
            config.shards,
        );

        // Restore-at-start goes through the configured store backend; the
        // store stays open in the tenant to serve `Checkpoint` frames. Any
        // backend accepts a v1 flat checkpoint here (migration on read),
        // so switching `--checkpoint-store` across restarts is safe.
        let store = match &config.checkpoint_path {
            Some(base) => {
                let path = tenant_checkpoint_path(base, &id);
                let mut store = open_store(config.checkpoint_store, path.clone());
                let want = identity.to_string();
                match store.load() {
                    Ok(Some(restored)) => {
                        match restored.run_line() {
                            Some(line) if line == want => {}
                            Some(line) => {
                                return Err(ServerError::Checkpoint(format!(
                                    "{}: stamped `{line}`, this server is `{want}`",
                                    path.display()
                                )))
                            }
                            None => {
                                return Err(ServerError::Checkpoint(format!(
                                    "{}: missing run-identity line",
                                    path.display()
                                )))
                            }
                        }
                        sink.restore_shards(restored.shards()).map_err(|e| {
                            ServerError::Checkpoint(format!("{}: {e}", path.display()))
                        })?;
                    }
                    Ok(None) => {}
                    Err(e) => {
                        return Err(ServerError::Checkpoint(format!("{}: {e}", path.display())))
                    }
                }
                Some(Mutex::new(store))
            }
            None => None,
        };

        Ok(Tenant {
            id,
            mechanism,
            sink,
            queue: IngestQueue::new(queue_capacity.unwrap_or(config.queue_capacity)),
            identity,
            fold_failures: AtomicU64::new(0),
            store,
        })
    }

    /// The bound address (resolves an ephemeral port request).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Users folded into the *default* tenant's accumulator so far.
    pub fn num_users(&self) -> u64 {
        self.shared.tenants[0].sink.num_users()
    }

    /// Users folded into the named tenant's accumulator so far.
    ///
    /// # Errors
    /// The same unknown-tenant message a wire client would see in its
    /// `Reject`.
    pub fn num_users_for(&self, tenant: &TenantId) -> Result<u64, String> {
        let index = self.shared.resolve_tenant(tenant.as_str())?;
        Ok(self.shared.tenants[index].sink.num_users())
    }

    /// Every tenant this server hosts, default tenant first.
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        self.shared.tenants.iter().map(|t| t.id.clone()).collect()
    }

    /// Accepted reports that failed to fold, summed across tenants (always
    /// `0` unless a validator / accumulator disagreement is introduced —
    /// monitored by tests).
    pub fn fold_failures(&self) -> u64 {
        self.shared
            .tenants
            .iter()
            .map(|t| t.fold_failures.load(Ordering::SeqCst))
            .sum()
    }

    /// Connections reaped for completing no frame within the configured
    /// [`ServerConfigBuilder::idle_timeout`] — silent peers and slow-loris drips
    /// alike, under either engine.
    pub fn reaped_connections(&self) -> u64 {
        self.shared.reaped.load(Ordering::SeqCst)
    }

    /// High-water mark of any single connection's buffered frame bytes.
    /// Bounded by what a peer has actually transmitted of its current
    /// frame (never its claimed length prefix) — the incremental-read
    /// memory bound the hostile-peer stress test asserts.
    pub fn peak_buffered_bytes(&self) -> usize {
        self.shared.peak_buffered.load(Ordering::Relaxed)
    }

    /// Freezes the *default* tenant's merged accumulator view after
    /// draining its queue (or the current view as-is when draining cannot
    /// complete — paused ingest or shutdown). For tests and embedders;
    /// remote callers use the `Query` frame.
    pub fn snapshot(&self) -> AccumulatorSnapshot {
        let tenant = &self.shared.tenants[0];
        tenant
            .settled_snapshot()
            .unwrap_or_else(|_| tenant.sink.snapshot())
    }

    /// Pauses folding on every tenant: accepted reports stay queued, so
    /// the bounded queues fill and further pushes draw `Busy` —
    /// deterministic backpressure for tests and maintenance windows.
    /// Queries whose watermark needs still-queued reports answer with a
    /// typed `Reject` while paused (blocking them would park connection
    /// workers until resume).
    pub fn pause_ingest(&self) {
        for tenant in &self.shared.tenants {
            tenant.queue.set_paused(true);
        }
    }

    /// Resumes folding after [`Self::pause_ingest`].
    pub fn resume_ingest(&self) {
        for tenant in &self.shared.tenants {
            tenant.queue.set_paused(false);
        }
    }

    /// Orderly stop: refuse new work, wake every blocked thread, join them
    /// all. In-queue (accepted but unfolded) reports at this instant are
    /// discarded — clients that need durability send a `Checkpoint` frame
    /// first.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        for tenant in &self.shared.tenants {
            tenant.queue.close();
        }
        // Reactor loops: wake each poller so it observes the stop flag
        // and closes its connections.
        #[cfg(unix)]
        for poller in &self.pollers {
            let _ = poller.notify();
        }
        // Unblock the acceptor with a throwaway connection, and workers
        // parked in a socket read by closing every live connection. A
        // server bound to an unspecified address (0.0.0.0 / ::) is not
        // connectable *at* that address on every platform, so the wake-up
        // aims at loopback on the bound port instead.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                std::net::IpAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                std::net::IpAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
            });
        }
        let _ = TcpStream::connect_timeout(&wake, std::time::Duration::from_secs(1));
        self.shared.close_connections();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Where a tenant's checkpoints live. The default tenant uses the
/// configured path verbatim — a single-tenant server checkpoints exactly
/// where every earlier protocol version did. A named tenant gets the
/// sibling `<path>.tenant-<name>` (tenant ids cannot contain separators,
/// so the name embeds verbatim), keeping all of one server's checkpoints
/// next to each other while every tenant restores independently.
pub(crate) fn tenant_checkpoint_path(base: &Path, id: &TenantId) -> PathBuf {
    if id.is_default() {
        return base.to_path_buf();
    }
    match base.file_name() {
        Some(name) => {
            let mut name = name.to_os_string();
            name.push(format!(".tenant-{id}"));
            base.with_file_name(name)
        }
        None => base.join(format!("tenant-{id}")),
    }
}

/// Drains one tenant's ingest queue into its sharded accumulator, one
/// whole batch (one `Reports` frame) per pop: a frame costs one lock
/// acquisition and one batched fold ([`ShardedAccumulator::push_batch`])
/// instead of per-report round trips. The [`crate::queue::BatchTicket`]
/// from `pop` is handed back to `mark_processed` so the queue's
/// completion frontier stays contiguous across workers — a query
/// watermark is only satisfied once every report below it is actually
/// folded, not merely an equal *count* of later ones.
fn ingest_worker(shared: &Shared, tenant_index: usize) {
    let tenant = shared.tenant(tenant_index);
    while let Some((ticket, batch)) = tenant.queue.pop() {
        let reports: Vec<Report<'_>> = batch.iter().map(ReportData::as_report).collect();
        if tenant.sink.push_batch(&reports).is_err() {
            // Cannot happen for reports the connection workers validated
            // (the batched fold validates by the same core definition);
            // counted defensively, batch-atomically.
            tenant.count_fold_failures(batch.len() as u64);
        }
        tenant.queue.mark_processed(ticket);
    }
}

/// How a blocking frame read ended without producing a frame.
enum ReadStop {
    /// Clean EOF at a frame boundary — the client closed.
    Eof,
    /// No complete frame arrived within the idle deadline — reap the peer.
    Idle,
    /// The byte stream violated the frame grammar (including EOF inside a
    /// frame) — send the typed `Reject`, then close.
    BadFrame(FrameError),
    /// Socket error; just drop the connection.
    Io,
}

/// Blocks until the assembler yields one frame, the idle deadline passes,
/// or the stream ends. The deadline is per *frame*, enforced through
/// `set_read_timeout` on the remaining budget — a silent peer and a
/// slow-loris drip (bytes arriving, frames never completing) both run it
/// out, which is the blocking half of the idle-reaping fix.
fn read_frame_blocking(
    stream: &mut TcpStream,
    asm: &mut FrameAssembler,
    buf: &mut [u8],
    deadline: Option<Instant>,
    shared: &Shared,
) -> Result<Frame, ReadStop> {
    loop {
        if let Some(frame) = asm.next_frame() {
            return Ok(frame);
        }
        if let Some(d) = deadline {
            let now = Instant::now();
            if now >= d {
                return Err(ReadStop::Idle);
            }
            if stream.set_read_timeout(Some(d - now)).is_err() {
                return Err(ReadStop::Io);
            }
        }
        match stream.read(buf) {
            Ok(0) => {
                return match asm.eof_truncation() {
                    None => Err(ReadStop::Eof),
                    Some(e) => Err(ReadStop::BadFrame(e)),
                }
            }
            Ok(n) => {
                if let Err(e) = asm.feed(&buf[..n]) {
                    return Err(ReadStop::BadFrame(e));
                }
                shared.note_buffered(asm.buffered_bytes());
            }
            Err(e)
                if matches!(e.kind(), std::io::ErrorKind::WouldBlock)
                    || matches!(e.kind(), std::io::ErrorKind::TimedOut) =>
            {
                // The read timeout was the remaining deadline budget.
                return Err(ReadStop::Idle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Err(ReadStop::Io),
        }
    }
}

fn send_reply(stream: &mut TcpStream, frame: &Frame) -> std::io::Result<()> {
    stream.write_all(&conn::encode_reply(frame))
}

/// Serves one connection on the blocking engine: handshake, then a frame
/// loop until EOF. Protocol violations answer with a typed
/// [`Frame::Reject`]; socket errors just drop the connection (the client
/// observes the closed socket). All protocol decisions are the shared
/// [`crate::conn`] logic — byte-identical to the reactor engine's.
fn handle_connection(stream: TcpStream, shared: &Shared, idle: Option<Duration>) {
    let _ = stream.set_nodelay(true);
    // An untrackable connection (clone failure under fd pressure) must be
    // dropped outright: shutdown could never close its socket, and a
    // silent peer would park this worker for the whole idle timeout.
    let Some(tracked) = shared.track(&stream) else {
        return;
    };
    let tracked = Some(tracked);
    // Checked *after* tracking: shutdown sets `stop` before closing the
    // tracked sockets, so a connection handed over concurrently is either
    // tracked in time to be closed, or sees `stop` here — either way no
    // worker can park in a read that nothing will ever wake
    // (`ReportServer::shutdown` joins these workers).
    if shared.stop.load(Ordering::SeqCst) {
        shared.untrack(tracked);
        return;
    }
    let mut stream = stream;
    serve_frames(&mut stream, shared, idle);
    shared.untrack(tracked);
}

/// The framed request/response loop of one blocking connection.
fn serve_frames(stream: &mut TcpStream, shared: &Shared, idle: Option<Duration>) {
    let mut asm = FrameAssembler::new();
    let mut buf = [0u8; 8 << 10];
    let mut deadline = idle.map(|d| Instant::now() + d);

    // Handshake: the first frame must be a matching Hello; it binds the
    // connection to one tenant for the rest of its life.
    let tenant;
    match read_frame_blocking(stream, &mut asm, &mut buf, deadline, shared) {
        Ok(frame) => match conn::apply_hello(shared, frame) {
            Ok((index, ack)) => {
                tenant = index;
                if send_reply(stream, &ack).is_err() {
                    return;
                }
            }
            Err(reject) => {
                let _ = send_reply(stream, &reject);
                return;
            }
        },
        Err(ReadStop::Eof) | Err(ReadStop::Io) => return,
        Err(ReadStop::Idle) => {
            shared.reaped.fetch_add(1, Ordering::SeqCst);
            return;
        }
        Err(ReadStop::BadFrame(e)) => {
            let _ = send_reply(
                stream,
                &Frame::Reject {
                    accepted: 0,
                    message: format!("handshake: {e}"),
                },
            );
            return;
        }
    }

    loop {
        deadline = idle.map(|d| Instant::now() + d);
        let frame = match read_frame_blocking(stream, &mut asm, &mut buf, deadline, shared) {
            Ok(frame) => frame,
            Err(ReadStop::Eof) | Err(ReadStop::Io) => return,
            Err(ReadStop::Idle) => {
                shared.reaped.fetch_add(1, Ordering::SeqCst);
                return;
            }
            Err(ReadStop::BadFrame(e)) => {
                let _ = send_reply(
                    stream,
                    &Frame::Reject {
                        accepted: 0,
                        message: format!("bad frame: {e}"),
                    },
                );
                return;
            }
        };
        let reply = match conn::apply_frame(shared, tenant, frame) {
            FrameAction::Reply(reply) => reply,
            FrameAction::Settle(pending) => {
                let outcome = shared
                    .tenant(pending.tenant)
                    .queue
                    .wait_processed(pending.watermark);
                match conn::settle_reply(shared, &pending, outcome) {
                    Some(reply) => reply,
                    None => return, // shutdown mid-query: drop without a reply
                }
            }
        };
        if send_reply(stream, &reply).is_err() {
            return;
        }
    }
}
