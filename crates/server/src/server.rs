//! The report server: TCP listener, bounded worker pool, bounded ingest
//! queue, sharded accumulation, and snapshot queries.
//!
//! ```text
//! acceptor ──(rendezvous channel: accept blocks while all workers busy)──▶
//!   connection workers ──(bounded IngestQueue: full ⇒ typed Busy reply)──▶
//!     ingest workers ──(fold)──▶ ShardedAccumulator ──(snapshot)──▶ oracle
//! ```
//!
//! Backpressure has exactly two points, both explicit: the acceptor blocks
//! in `send` while every connection worker is busy (TCP's own accept queue
//! then throttles new peers), and a full ingest queue makes the connection
//! worker answer [`Frame::Busy`] with the count of reports it *did* accept
//! — the client re-sends the rest. An accepted report is never dropped:
//! it is either folded or the server was shut down.
//!
//! Queries linearize after ingestion: `Query`/`TopKQuery`/`Checkpoint`
//! first wait until the fold side reaches the accept watermark taken when
//! the request arrived ([`crate::queue::IngestQueue::wait_processed`]), so
//! the reply reflects every report any client had pushed by then. That is
//! what makes loopback estimates *bit-identical* to a batch pipeline run —
//! `crates/sim/tests/server_loopback.rs` proves it for all eight
//! mechanisms.

use crate::conn::{self, FrameAction};
use crate::frame::{Frame, FrameAssembler, FrameError};
use crate::queue::{IngestQueue, WaitOutcome};
use idldp_core::mechanism::Mechanism;
use idldp_core::report::Report;
use idldp_core::report::{ReportData, ReportShape};
use idldp_core::snapshot::{open_store, AccumulatorSnapshot, SnapshotStore, StoreKind};
use idldp_stream::{ShapedAccumulator, ShardedAccumulator};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server construction/runtime errors.
#[derive(Debug)]
pub enum ServerError {
    /// Socket-level failure (bind, accept setup).
    Io(std::io::Error),
    /// The configured checkpoint exists but cannot back this server
    /// (parse failure, width mismatch, or a different run stamp).
    Checkpoint(String),
    /// The mechanism cannot be served over this wire protocol (a
    /// bit-vector report wider than
    /// [`crate::frame::MAX_BIT_REPORT_SLOTS`] — every report would be
    /// undecodable, so startup refuses instead of rejecting per frame).
    Config(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "server i/o: {e}"),
            ServerError::Checkpoint(detail) => write!(f, "server checkpoint: {detail}"),
            ServerError::Config(detail) => write!(f, "server config: {detail}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

/// Which connection engine serves the sockets. The wire protocol, the
/// typed `Busy` backpressure, and query linearization are identical under
/// both — the loopback conformance suite runs every case against each and
/// demands bit-identical estimates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ConnectionEngine {
    /// Thread-per-connection blocking I/O behind a rendezvous acceptor:
    /// one connection worker per live connection, `accept` blocks while
    /// all are busy. Simple and debuggable; concurrency is bounded by
    /// [`ServerConfig::connection_workers`].
    #[default]
    Blocking,
    /// Readiness reactor (epoll-style): [`ServerConfig::connection_workers`]
    /// event loops multiplex *all* connections over non-blocking sockets —
    /// thousands of mostly-idle clients cost registrations, not threads.
    Reactor,
}

impl std::str::FromStr for ConnectionEngine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "blocking" => Ok(Self::Blocking),
            "reactor" => Ok(Self::Reactor),
            other => Err(format!(
                "unknown connection engine `{other}` (expected `blocking` or `reactor`)"
            )),
        }
    }
}

impl std::fmt::Display for ConnectionEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Blocking => "blocking",
            Self::Reactor => "reactor",
        })
    }
}

/// Tunables of a [`ReportServer`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port (read it back from
    /// [`ReportServer::local_addr`]).
    pub addr: String,
    /// Accumulator shards (see [`idldp_stream::ShardedAccumulator`]).
    pub shards: usize,
    /// Ingest queue capacity — the backpressure bound. Accepted-but-unfolded
    /// reports never exceed this.
    pub queue_capacity: usize,
    /// Fold workers draining the ingest queue.
    pub ingest_workers: usize,
    /// Connection concurrency: blocking-engine workers (the acceptor
    /// blocks once all are busy) or reactor event loops (each multiplexing
    /// any number of connections).
    pub connection_workers: usize,
    /// Which connection engine serves the sockets.
    pub engine: ConnectionEngine,
    /// Reap a connection that completes no frame for this long — a silent
    /// peer must not pin a blocking worker (or a reactor registration)
    /// forever. `None` disables reaping.
    pub idle_timeout: Option<Duration>,
    /// Optional checkpoint path: restored (if present) at startup, written
    /// durably on every `Checkpoint` control frame — through the
    /// [`SnapshotStore`] backend selected by
    /// [`ServerConfig::checkpoint_store`].
    pub checkpoint_path: Option<PathBuf>,
    /// Which [`SnapshotStore`] backend persists checkpoints at
    /// [`ServerConfig::checkpoint_path`]: `file` (single atomic rewrite),
    /// `sharded` (one file per accumulator shard + fsynced manifest,
    /// parallel write/restore), or `delta` (append-only delta log,
    /// O(traffic) per checkpoint). Any backend transparently restores a
    /// checkpoint written by the plain file format.
    pub checkpoint_store: StoreKind,
    /// Extra run-identity text stamped into checkpoints alongside the
    /// mechanism's kind/shape/width/ε. Embedders put everything that went
    /// into *constructing* the mechanism here (the CLI stamps
    /// `mechanism=… m=… eps=… seed=…`), so a restart under different
    /// parameters refuses the old counts instead of silently restoring a
    /// population perturbed under a different configuration.
    pub config_stamp: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            shards: idldp_stream::DEFAULT_SHARDS,
            queue_capacity: 65_536,
            ingest_workers: 2,
            connection_workers: 4,
            engine: ConnectionEngine::default(),
            idle_timeout: Some(Duration::from_secs(60)),
            checkpoint_path: None,
            checkpoint_store: StoreKind::default(),
            config_stamp: None,
        }
    }
}

/// Shared state between the acceptor (or reactor loops), connection
/// workers, and ingest workers.
pub(crate) struct Shared {
    pub(crate) mechanism: Arc<dyn Mechanism>,
    pub(crate) sink: ShardedAccumulator<ShapedAccumulator>,
    pub(crate) queue: IngestQueue<ReportData>,
    pub(crate) stop: AtomicBool,
    /// Reports that failed to fold after acceptance (cannot happen for
    /// reports the connection workers validated; counted defensively).
    fold_failures: AtomicU64,
    /// The open checkpoint store, if checkpointing is configured. The
    /// mutex serializes concurrent `Checkpoint` frames: the delta backend
    /// appends relative to the snapshot it saved last, so saves must not
    /// interleave (the file backend tolerates racing writers, but one
    /// ordering rule for all backends is simpler than three).
    pub(crate) store: Option<Mutex<Box<dyn SnapshotStore>>>,
    config_stamp: Option<String>,
    /// Connections reaped for idling past the configured timeout (either
    /// engine) — observable via [`ReportServer::reaped_connections`].
    pub(crate) reaped: AtomicU64,
    /// High-water mark of any one connection's buffered frame bytes — the
    /// incremental-read memory bound the hostile-peer stress test pins.
    peak_buffered: AtomicUsize,
    /// Live connections, keyed by a monotone id, so shutdown can close
    /// their sockets and unblock workers parked in `read` (blocking
    /// engine; reactor loops close their own connections on stop).
    connections: Mutex<std::collections::HashMap<u64, TcpStream>>,
    next_connection_id: AtomicU64,
}

impl Shared {
    /// Registers a live connection for shutdown teardown.
    fn track(&self, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let id = self.next_connection_id.fetch_add(1, Ordering::SeqCst);
        self.connections
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(id, clone);
        Some(id)
    }

    fn untrack(&self, id: Option<u64>) {
        if let Some(id) = id {
            self.connections
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .remove(&id);
        }
    }

    /// Forcibly closes every live connection (both directions), waking any
    /// worker blocked in a socket read.
    fn close_connections(&self) {
        let connections = self
            .connections
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for stream in connections.values() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

impl Shared {
    /// Folds `bytes` into the per-connection buffered-bytes high-water
    /// mark (see [`ReportServer::peak_buffered_bytes`]).
    pub(crate) fn note_buffered(&self, bytes: usize) {
        self.peak_buffered.fetch_max(bytes, Ordering::Relaxed);
    }

    /// The run-identity stamp appended to checkpoints, refusing restores
    /// into a differently configured server. Besides kind/shape/width it
    /// carries the mechanism's exact plain-LDP budget (raw IEEE-754 bits —
    /// two mechanisms of the same kind and width but different ε produce
    /// incompatible counts) and the embedder's
    /// [`ServerConfig::config_stamp`].
    pub(crate) fn run_line(&self) -> String {
        run_identity_line(self.mechanism.as_ref(), self.config_stamp.as_deref())
    }

    /// Waits for everything accepted so far to be folded, then freezes the
    /// merged view.
    ///
    /// # Errors
    /// [`Settle::Shutdown`] when the server closed mid-wait (drop the
    /// connection), [`Settle::Refuse`] when the wait cannot complete —
    /// ingest is paused and the watermark needs still-queued reports, so
    /// blocking would park the connection worker until resume (with every
    /// worker parked, even the acceptor wedges). The typed refusal keeps
    /// a paused maintenance window observable instead of hanging clients.
    fn settled_snapshot(&self) -> Result<AccumulatorSnapshot, Settle> {
        let watermark = self.queue.watermark();
        match self.queue.wait_processed(watermark) {
            WaitOutcome::Reached => Ok(self.sink.snapshot()),
            WaitOutcome::Paused => Err(Settle::Refuse(conn::PAUSED_MSG.into())),
            WaitOutcome::Closed => Err(Settle::Shutdown),
        }
    }
}

/// The run-identity stamp, computable before the internal shared state exists
/// (startup restores the checkpoint against it prior to spawning
/// anything). Public because it is also the fleet-identity contract: the
/// server sends this exact line in its `HelloAck`, and a coordinator
/// computes its *expected* line through this same function to refuse
/// collectors running a different mechanism/m/ε/seed config.
pub fn run_identity_line(mechanism: &dyn Mechanism, config_stamp: Option<&str>) -> String {
    let mut line = format!(
        "run idldp-serve kind={} shape={} report_len={} ldp_eps={:016x}",
        mechanism.kind(),
        mechanism.report_shape().label(),
        mechanism.report_len(),
        mechanism.ldp_epsilon().to_bits()
    );
    if let Some(stamp) = config_stamp {
        line.push(' ');
        line.push_str(stamp);
    }
    line
}

/// Why a settled view could not be produced.
enum Settle {
    /// The server is shutting down — drop the connection.
    Shutdown,
    /// A typed, client-visible reason (paused ingest, oracle failure).
    #[allow(dead_code)] // carried for symmetry; `snapshot()` discards it
    Refuse(String),
}

/// A running ingestion service. Dropping the handle leaks the threads;
/// call [`ReportServer::shutdown`] for an orderly stop.
pub struct ReportServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// Reactor-engine pollers, notified on shutdown so the event loops
    /// observe the stop flag (empty under the blocking engine).
    #[cfg(unix)]
    pollers: Vec<Arc<polling::Poller>>,
}

impl ReportServer {
    /// Binds, restores the checkpoint if one exists, and spawns the
    /// acceptor, connection-worker, and ingest-worker threads.
    ///
    /// # Errors
    /// Bind failures, unusable checkpoints, and a
    /// [`ServerError::Config`] for a bit-vector mechanism wider than the
    /// wire protocol's [`crate::frame::MAX_BIT_REPORT_SLOTS`] (every
    /// report would be undecodable — fail at startup, not per frame).
    ///
    /// # Panics
    /// Panics if `shards`, `queue_capacity`, `ingest_workers`, or
    /// `connection_workers` is zero.
    pub fn start(mechanism: Arc<dyn Mechanism>, config: ServerConfig) -> Result<Self, ServerError> {
        assert!(config.ingest_workers > 0, "need at least one ingest worker");
        assert!(
            config.connection_workers > 0,
            "need at least one connection worker"
        );
        if matches!(mechanism.report_shape(), ReportShape::Bits)
            && mechanism.report_len() > crate::frame::MAX_BIT_REPORT_SLOTS
        {
            return Err(ServerError::Config(format!(
                "bit-vector mechanism width {} exceeds the wire cap of {} slots",
                mechanism.report_len(),
                crate::frame::MAX_BIT_REPORT_SLOTS
            )));
        }
        let sink = ShardedAccumulator::new(
            ShapedAccumulator::for_mechanism(mechanism.as_ref()),
            config.shards,
        );

        // Restore-at-start goes through the configured store backend; the
        // store stays open in `Shared` to serve `Checkpoint` frames. Any
        // backend accepts a v1 flat checkpoint here (migration on read),
        // so switching `--checkpoint-store` across restarts is safe.
        let store = match &config.checkpoint_path {
            Some(path) => {
                let mut store = open_store(config.checkpoint_store, path.clone());
                let want = run_identity_line(mechanism.as_ref(), config.config_stamp.as_deref());
                match store.load() {
                    Ok(Some(restored)) => {
                        match restored.run_line() {
                            Some(line) if line == want => {}
                            Some(line) => {
                                return Err(ServerError::Checkpoint(format!(
                                    "{}: stamped `{line}`, this server is `{want}`",
                                    path.display()
                                )))
                            }
                            None => {
                                return Err(ServerError::Checkpoint(format!(
                                    "{}: missing run-identity line",
                                    path.display()
                                )))
                            }
                        }
                        sink.restore_shards(restored.shards()).map_err(|e| {
                            ServerError::Checkpoint(format!("{}: {e}", path.display()))
                        })?;
                    }
                    Ok(None) => {}
                    Err(e) => {
                        return Err(ServerError::Checkpoint(format!("{}: {e}", path.display())))
                    }
                }
                Some(Mutex::new(store))
            }
            None => None,
        };

        let shared = Arc::new(Shared {
            mechanism,
            sink,
            queue: IngestQueue::new(config.queue_capacity),
            stop: AtomicBool::new(false),
            fold_failures: AtomicU64::new(0),
            store,
            config_stamp: config.config_stamp.clone(),
            reaped: AtomicU64::new(0),
            peak_buffered: AtomicUsize::new(0),
            connections: Mutex::new(std::collections::HashMap::new()),
            next_connection_id: AtomicU64::new(0),
        });

        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;

        let mut workers = Vec::new();
        for _ in 0..config.ingest_workers {
            let shared = Arc::clone(&shared);
            workers.push(std::thread::spawn(move || ingest_worker(&shared)));
        }

        let mut acceptor = None;
        #[cfg(unix)]
        let mut pollers = Vec::new();
        match config.engine {
            ConnectionEngine::Blocking => {
                // Rendezvous handoff: `send` blocks until a connection
                // worker is free, which in turn blocks `accept` —
                // bounded-pool backpressure without an unbounded
                // pending-connection buffer.
                let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(0);
                let conn_rx = Arc::new(Mutex::new(conn_rx));
                for _ in 0..config.connection_workers {
                    let shared = Arc::clone(&shared);
                    let conn_rx = Arc::clone(&conn_rx);
                    let idle = config.idle_timeout;
                    workers.push(std::thread::spawn(move || loop {
                        let stream = {
                            let guard = conn_rx
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                            guard.recv()
                        };
                        match stream {
                            Ok(stream) => handle_connection(stream, &shared, idle),
                            Err(_) => return, // acceptor gone: shutdown
                        }
                    }));
                }

                acceptor = Some({
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || {
                        for stream in listener.incoming() {
                            if shared.stop.load(Ordering::SeqCst) {
                                return; // conn_tx drops here, stopping the workers
                            }
                            match stream {
                                Ok(stream) => {
                                    if conn_tx.send(stream).is_err() {
                                        return;
                                    }
                                }
                                Err(_) => continue,
                            }
                        }
                    })
                });
            }
            ConnectionEngine::Reactor => {
                #[cfg(unix)]
                {
                    let handle = crate::reactor::spawn(
                        listener,
                        Arc::clone(&shared),
                        config.connection_workers,
                        config.idle_timeout,
                    )
                    .map_err(|e| {
                        if e.kind() == std::io::ErrorKind::Unsupported {
                            ServerError::Config(format!("reactor engine unavailable: {e}"))
                        } else {
                            ServerError::Io(e)
                        }
                    })?;
                    pollers = handle.pollers;
                    workers.extend(handle.threads);
                }
                #[cfg(not(unix))]
                {
                    drop(listener);
                    return Err(ServerError::Config(
                        "reactor engine requires a unix readiness backend".into(),
                    ));
                }
            }
        }

        Ok(Self {
            addr,
            shared,
            acceptor,
            workers,
            #[cfg(unix)]
            pollers,
        })
    }

    /// The bound address (resolves an ephemeral port request).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Users folded into the accumulator so far.
    pub fn num_users(&self) -> u64 {
        self.shared.sink.num_users()
    }

    /// Accepted reports that failed to fold (always `0` unless a validator
    /// / accumulator disagreement is introduced — monitored by tests).
    pub fn fold_failures(&self) -> u64 {
        self.shared.fold_failures.load(Ordering::SeqCst)
    }

    /// Connections reaped for completing no frame within the configured
    /// [`ServerConfig::idle_timeout`] — silent peers and slow-loris drips
    /// alike, under either engine.
    pub fn reaped_connections(&self) -> u64 {
        self.shared.reaped.load(Ordering::SeqCst)
    }

    /// High-water mark of any single connection's buffered frame bytes.
    /// Bounded by what a peer has actually transmitted of its current
    /// frame (never its claimed length prefix) — the incremental-read
    /// memory bound the hostile-peer stress test asserts.
    pub fn peak_buffered_bytes(&self) -> usize {
        self.shared.peak_buffered.load(Ordering::Relaxed)
    }

    /// Freezes the merged accumulator view after draining the queue (or
    /// the current view as-is when draining cannot complete — paused
    /// ingest or shutdown). For tests and embedders; remote callers use
    /// the `Query` frame.
    pub fn snapshot(&self) -> AccumulatorSnapshot {
        self.shared
            .settled_snapshot()
            .unwrap_or_else(|_| self.shared.sink.snapshot())
    }

    /// Pauses folding: accepted reports stay queued, so the bounded queue
    /// fills and further pushes draw `Busy` — deterministic backpressure
    /// for tests and maintenance windows. Queries whose watermark needs
    /// still-queued reports answer with a typed `Reject` while paused
    /// (blocking them would park connection workers until resume).
    pub fn pause_ingest(&self) {
        self.shared.queue.set_paused(true);
    }

    /// Resumes folding after [`Self::pause_ingest`].
    pub fn resume_ingest(&self) {
        self.shared.queue.set_paused(false);
    }

    /// Orderly stop: refuse new work, wake every blocked thread, join them
    /// all. In-queue (accepted but unfolded) reports at this instant are
    /// discarded — clients that need durability send a `Checkpoint` frame
    /// first.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        // Reactor loops: wake each poller so it observes the stop flag
        // and closes its connections.
        #[cfg(unix)]
        for poller in &self.pollers {
            let _ = poller.notify();
        }
        // Unblock the acceptor with a throwaway connection, and workers
        // parked in a socket read by closing every live connection. A
        // server bound to an unspecified address (0.0.0.0 / ::) is not
        // connectable *at* that address on every platform, so the wake-up
        // aims at loopback on the bound port instead.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                std::net::IpAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                std::net::IpAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
            });
        }
        let _ = TcpStream::connect_timeout(&wake, std::time::Duration::from_secs(1));
        self.shared.close_connections();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Drains the ingest queue into the sharded accumulator, one whole batch
/// (one `Reports` frame) per pop: a frame costs one lock acquisition and
/// one batched fold ([`ShardedAccumulator::push_batch`]) instead of
/// per-report round trips. The [`crate::queue::BatchTicket`] from `pop`
/// is handed back to `mark_processed` so the queue's completion frontier
/// stays contiguous across workers — a query watermark is only satisfied
/// once every report below it is actually folded, not merely an equal
/// *count* of later ones.
fn ingest_worker(shared: &Shared) {
    while let Some((ticket, batch)) = shared.queue.pop() {
        let reports: Vec<Report<'_>> = batch.iter().map(ReportData::as_report).collect();
        if shared.sink.push_batch(&reports).is_err() {
            // Cannot happen for reports the connection workers validated
            // (the batched fold validates by the same core definition);
            // counted defensively, batch-atomically.
            shared
                .fold_failures
                .fetch_add(batch.len() as u64, Ordering::SeqCst);
        }
        shared.queue.mark_processed(ticket);
    }
}

/// How a blocking frame read ended without producing a frame.
enum ReadStop {
    /// Clean EOF at a frame boundary — the client closed.
    Eof,
    /// No complete frame arrived within the idle deadline — reap the peer.
    Idle,
    /// The byte stream violated the frame grammar (including EOF inside a
    /// frame) — send the typed `Reject`, then close.
    BadFrame(FrameError),
    /// Socket error; just drop the connection.
    Io,
}

/// Blocks until the assembler yields one frame, the idle deadline passes,
/// or the stream ends. The deadline is per *frame*, enforced through
/// `set_read_timeout` on the remaining budget — a silent peer and a
/// slow-loris drip (bytes arriving, frames never completing) both run it
/// out, which is the blocking half of the idle-reaping fix.
fn read_frame_blocking(
    stream: &mut TcpStream,
    asm: &mut FrameAssembler,
    buf: &mut [u8],
    deadline: Option<Instant>,
    shared: &Shared,
) -> Result<Frame, ReadStop> {
    loop {
        if let Some(frame) = asm.next_frame() {
            return Ok(frame);
        }
        if let Some(d) = deadline {
            let now = Instant::now();
            if now >= d {
                return Err(ReadStop::Idle);
            }
            if stream.set_read_timeout(Some(d - now)).is_err() {
                return Err(ReadStop::Io);
            }
        }
        match stream.read(buf) {
            Ok(0) => {
                return match asm.eof_truncation() {
                    None => Err(ReadStop::Eof),
                    Some(e) => Err(ReadStop::BadFrame(e)),
                }
            }
            Ok(n) => {
                if let Err(e) = asm.feed(&buf[..n]) {
                    return Err(ReadStop::BadFrame(e));
                }
                shared.note_buffered(asm.buffered_bytes());
            }
            Err(e)
                if matches!(e.kind(), std::io::ErrorKind::WouldBlock)
                    || matches!(e.kind(), std::io::ErrorKind::TimedOut) =>
            {
                // The read timeout was the remaining deadline budget.
                return Err(ReadStop::Idle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Err(ReadStop::Io),
        }
    }
}

fn send_reply(stream: &mut TcpStream, frame: &Frame) -> std::io::Result<()> {
    stream.write_all(&conn::encode_reply(frame))
}

/// Serves one connection on the blocking engine: handshake, then a frame
/// loop until EOF. Protocol violations answer with a typed
/// [`Frame::Reject`]; socket errors just drop the connection (the client
/// observes the closed socket). All protocol decisions are the shared
/// [`crate::conn`] logic — byte-identical to the reactor engine's.
fn handle_connection(stream: TcpStream, shared: &Shared, idle: Option<Duration>) {
    let _ = stream.set_nodelay(true);
    // An untrackable connection (clone failure under fd pressure) must be
    // dropped outright: shutdown could never close its socket, and a
    // silent peer would park this worker for the whole idle timeout.
    let Some(tracked) = shared.track(&stream) else {
        return;
    };
    let tracked = Some(tracked);
    // Checked *after* tracking: shutdown sets `stop` before closing the
    // tracked sockets, so a connection handed over concurrently is either
    // tracked in time to be closed, or sees `stop` here — either way no
    // worker can park in a read that nothing will ever wake
    // (`ReportServer::shutdown` joins these workers).
    if shared.stop.load(Ordering::SeqCst) {
        shared.untrack(tracked);
        return;
    }
    let mut stream = stream;
    serve_frames(&mut stream, shared, idle);
    shared.untrack(tracked);
}

/// The framed request/response loop of one blocking connection.
fn serve_frames(stream: &mut TcpStream, shared: &Shared, idle: Option<Duration>) {
    let mut asm = FrameAssembler::new();
    let mut buf = [0u8; 8 << 10];
    let mut deadline = idle.map(|d| Instant::now() + d);

    // Handshake: the first frame must be a matching Hello.
    match read_frame_blocking(stream, &mut asm, &mut buf, deadline, shared) {
        Ok(frame) => match conn::apply_hello(shared, frame) {
            Ok(ack) => {
                if send_reply(stream, &ack).is_err() {
                    return;
                }
            }
            Err(reject) => {
                let _ = send_reply(stream, &reject);
                return;
            }
        },
        Err(ReadStop::Eof) | Err(ReadStop::Io) => return,
        Err(ReadStop::Idle) => {
            shared.reaped.fetch_add(1, Ordering::SeqCst);
            return;
        }
        Err(ReadStop::BadFrame(e)) => {
            let _ = send_reply(
                stream,
                &Frame::Reject {
                    accepted: 0,
                    message: format!("handshake: {e}"),
                },
            );
            return;
        }
    }

    loop {
        deadline = idle.map(|d| Instant::now() + d);
        let frame = match read_frame_blocking(stream, &mut asm, &mut buf, deadline, shared) {
            Ok(frame) => frame,
            Err(ReadStop::Eof) | Err(ReadStop::Io) => return,
            Err(ReadStop::Idle) => {
                shared.reaped.fetch_add(1, Ordering::SeqCst);
                return;
            }
            Err(ReadStop::BadFrame(e)) => {
                let _ = send_reply(
                    stream,
                    &Frame::Reject {
                        accepted: 0,
                        message: format!("bad frame: {e}"),
                    },
                );
                return;
            }
        };
        let reply = match conn::apply_frame(shared, frame) {
            FrameAction::Reply(reply) => reply,
            FrameAction::Settle(pending) => {
                let outcome = shared.queue.wait_processed(pending.watermark);
                match conn::settle_reply(shared, &pending, outcome) {
                    Some(reply) => reply,
                    None => return, // shutdown mid-query: drop without a reply
                }
            }
        };
        if send_reply(stream, &reply).is_err() {
            return;
        }
    }
}
