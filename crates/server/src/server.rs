//! The report server: TCP listener, bounded worker pool, bounded ingest
//! queue, sharded accumulation, and snapshot queries.
//!
//! ```text
//! acceptor ──(rendezvous channel: accept blocks while all workers busy)──▶
//!   connection workers ──(bounded IngestQueue: full ⇒ typed Busy reply)──▶
//!     ingest workers ──(fold)──▶ ShardedAccumulator ──(snapshot)──▶ oracle
//! ```
//!
//! Backpressure has exactly two points, both explicit: the acceptor blocks
//! in `send` while every connection worker is busy (TCP's own accept queue
//! then throttles new peers), and a full ingest queue makes the connection
//! worker answer [`Frame::Busy`] with the count of reports it *did* accept
//! — the client re-sends the rest. An accepted report is never dropped:
//! it is either folded or the server was shut down.
//!
//! Queries linearize after ingestion: `Query`/`TopKQuery`/`Checkpoint`
//! first wait until the fold side reaches the accept watermark taken when
//! the request arrived ([`crate::queue::IngestQueue::wait_processed`]), so
//! the reply reflects every report any client had pushed by then. That is
//! what makes loopback estimates *bit-identical* to a batch pipeline run —
//! `crates/sim/tests/server_loopback.rs` proves it for all eight
//! mechanisms.

use crate::frame::{Frame, FrameError, PROTOCOL_VERSION};
use crate::queue::{IngestQueue, PushRefusal, WaitOutcome};
use idldp_core::mechanism::Mechanism;
use idldp_core::report::Report;
use idldp_core::report::{ReportData, ReportShape};
use idldp_core::snapshot::AccumulatorSnapshot;
use idldp_num::vecops::top_k_indices;
use idldp_stream::{ShapedAccumulator, ShardedAccumulator};
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// Server construction/runtime errors.
#[derive(Debug)]
pub enum ServerError {
    /// Socket-level failure (bind, accept setup).
    Io(std::io::Error),
    /// The configured checkpoint exists but cannot back this server
    /// (parse failure, width mismatch, or a different run stamp).
    Checkpoint(String),
    /// The mechanism cannot be served over this wire protocol (a
    /// bit-vector report wider than
    /// [`crate::frame::MAX_BIT_REPORT_SLOTS`] — every report would be
    /// undecodable, so startup refuses instead of rejecting per frame).
    Config(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "server i/o: {e}"),
            ServerError::Checkpoint(detail) => write!(f, "server checkpoint: {detail}"),
            ServerError::Config(detail) => write!(f, "server config: {detail}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

/// Tunables of a [`ReportServer`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port (read it back from
    /// [`ReportServer::local_addr`]).
    pub addr: String,
    /// Accumulator shards (see [`idldp_stream::ShardedAccumulator`]).
    pub shards: usize,
    /// Ingest queue capacity — the backpressure bound. Accepted-but-unfolded
    /// reports never exceed this.
    pub queue_capacity: usize,
    /// Fold workers draining the ingest queue.
    pub ingest_workers: usize,
    /// Connection workers; the acceptor blocks once all are busy.
    pub connection_workers: usize,
    /// Optional checkpoint file: restored (if present) at startup, written
    /// atomically on every `Checkpoint` control frame.
    pub checkpoint_path: Option<PathBuf>,
    /// Extra run-identity text stamped into checkpoints alongside the
    /// mechanism's kind/shape/width/ε. Embedders put everything that went
    /// into *constructing* the mechanism here (the CLI stamps
    /// `mechanism=… m=… eps=… seed=…`), so a restart under different
    /// parameters refuses the old counts instead of silently restoring a
    /// population perturbed under a different configuration.
    pub config_stamp: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            shards: idldp_stream::DEFAULT_SHARDS,
            queue_capacity: 65_536,
            ingest_workers: 2,
            connection_workers: 4,
            checkpoint_path: None,
            config_stamp: None,
        }
    }
}

/// Shared state between the acceptor, connection workers, and ingest
/// workers.
struct Shared {
    mechanism: Arc<dyn Mechanism>,
    sink: ShardedAccumulator<ShapedAccumulator>,
    queue: IngestQueue<ReportData>,
    stop: AtomicBool,
    /// Reports that failed to fold after acceptance (cannot happen for
    /// reports the connection workers validated; counted defensively).
    fold_failures: AtomicU64,
    checkpoint_path: Option<PathBuf>,
    config_stamp: Option<String>,
    /// Live connections, keyed by a monotone id, so shutdown can close
    /// their sockets and unblock workers parked in `read`.
    connections: Mutex<std::collections::HashMap<u64, TcpStream>>,
    next_connection_id: AtomicU64,
}

impl Shared {
    /// Registers a live connection for shutdown teardown.
    fn track(&self, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let id = self.next_connection_id.fetch_add(1, Ordering::SeqCst);
        self.connections
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(id, clone);
        Some(id)
    }

    fn untrack(&self, id: Option<u64>) {
        if let Some(id) = id {
            self.connections
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .remove(&id);
        }
    }

    /// Forcibly closes every live connection (both directions), waking any
    /// worker blocked in a socket read.
    fn close_connections(&self) {
        let connections = self
            .connections
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for stream in connections.values() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

impl Shared {
    /// The run-identity stamp appended to checkpoints, refusing restores
    /// into a differently configured server. Besides kind/shape/width it
    /// carries the mechanism's exact plain-LDP budget (raw IEEE-754 bits —
    /// two mechanisms of the same kind and width but different ε produce
    /// incompatible counts) and the embedder's
    /// [`ServerConfig::config_stamp`].
    fn run_line(&self) -> String {
        let mut line = format!(
            "run idldp-serve kind={} shape={} report_len={} ldp_eps={:016x}",
            self.mechanism.kind(),
            self.mechanism.report_shape().label(),
            self.mechanism.report_len(),
            self.mechanism.ldp_epsilon().to_bits()
        );
        if let Some(stamp) = &self.config_stamp {
            line.push(' ');
            line.push_str(stamp);
        }
        line
    }

    /// Waits for everything accepted so far to be folded, then freezes the
    /// merged view.
    ///
    /// # Errors
    /// [`Settle::Shutdown`] when the server closed mid-wait (drop the
    /// connection), [`Settle::Refuse`] when the wait cannot complete —
    /// ingest is paused and the watermark needs still-queued reports, so
    /// blocking would park the connection worker until resume (with every
    /// worker parked, even the acceptor wedges). The typed refusal keeps
    /// a paused maintenance window observable instead of hanging clients.
    fn settled_snapshot(&self) -> Result<AccumulatorSnapshot, Settle> {
        let watermark = self.queue.watermark();
        match self.queue.wait_processed(watermark) {
            WaitOutcome::Reached => Ok(self.sink.snapshot()),
            WaitOutcome::Paused => Err(Settle::Refuse(
                "ingest is paused; accepted reports are not yet folded — retry after resume".into(),
            )),
            WaitOutcome::Closed => Err(Settle::Shutdown),
        }
    }

    /// Estimates over a settled snapshot (empty while no users).
    fn settled_estimates(&self) -> Result<(u64, Vec<f64>), Settle> {
        let snapshot = self.settled_snapshot()?;
        let users = snapshot.num_users();
        if users == 0 {
            return Ok((0, Vec::new()));
        }
        self.mechanism
            .frequency_oracle(users)
            .estimate_from(&snapshot)
            .map(|estimates| (users, estimates))
            .map_err(|e| Settle::Refuse(e.to_string()))
    }
}

/// Why a settled view could not be produced.
enum Settle {
    /// The server is shutting down — drop the connection.
    Shutdown,
    /// A typed, client-visible reason (paused ingest, oracle failure).
    Refuse(String),
}

/// A running ingestion service. Dropping the handle leaks the threads;
/// call [`ReportServer::shutdown`] for an orderly stop.
pub struct ReportServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ReportServer {
    /// Binds, restores the checkpoint if one exists, and spawns the
    /// acceptor, connection-worker, and ingest-worker threads.
    ///
    /// # Errors
    /// Bind failures, unusable checkpoints, and a
    /// [`ServerError::Config`] for a bit-vector mechanism wider than the
    /// wire protocol's [`crate::frame::MAX_BIT_REPORT_SLOTS`] (every
    /// report would be undecodable — fail at startup, not per frame).
    ///
    /// # Panics
    /// Panics if `shards`, `queue_capacity`, `ingest_workers`, or
    /// `connection_workers` is zero.
    pub fn start(mechanism: Arc<dyn Mechanism>, config: ServerConfig) -> Result<Self, ServerError> {
        assert!(config.ingest_workers > 0, "need at least one ingest worker");
        assert!(
            config.connection_workers > 0,
            "need at least one connection worker"
        );
        if matches!(mechanism.report_shape(), ReportShape::Bits)
            && mechanism.report_len() > crate::frame::MAX_BIT_REPORT_SLOTS
        {
            return Err(ServerError::Config(format!(
                "bit-vector mechanism width {} exceeds the wire cap of {} slots",
                mechanism.report_len(),
                crate::frame::MAX_BIT_REPORT_SLOTS
            )));
        }
        let sink = ShardedAccumulator::new(
            ShapedAccumulator::for_mechanism(mechanism.as_ref()),
            config.shards,
        );
        let shared = Arc::new(Shared {
            mechanism,
            sink,
            queue: IngestQueue::new(config.queue_capacity),
            stop: AtomicBool::new(false),
            fold_failures: AtomicU64::new(0),
            checkpoint_path: config.checkpoint_path.clone(),
            config_stamp: config.config_stamp.clone(),
            connections: Mutex::new(std::collections::HashMap::new()),
            next_connection_id: AtomicU64::new(0),
        });

        if let Some(path) = &config.checkpoint_path {
            match std::fs::read_to_string(path) {
                Ok(text) => {
                    let snapshot = AccumulatorSnapshot::from_checkpoint_str(&text)
                        .map_err(|e| ServerError::Checkpoint(format!("{}: {e}", path.display())))?;
                    let want = shared.run_line();
                    match text.lines().find(|l| l.starts_with("run ")) {
                        Some(line) if line == want => {}
                        Some(line) => {
                            return Err(ServerError::Checkpoint(format!(
                                "{}: stamped `{line}`, this server is `{want}`",
                                path.display()
                            )))
                        }
                        None => {
                            return Err(ServerError::Checkpoint(format!(
                                "{}: missing run-identity line",
                                path.display()
                            )))
                        }
                    }
                    shared
                        .sink
                        .restore(&snapshot)
                        .map_err(|e| ServerError::Checkpoint(format!("{}: {e}", path.display())))?;
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(ServerError::Checkpoint(format!("{}: {e}", path.display()))),
            }
        }

        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;

        let mut workers = Vec::new();
        for _ in 0..config.ingest_workers {
            let shared = Arc::clone(&shared);
            workers.push(std::thread::spawn(move || ingest_worker(&shared)));
        }

        // Rendezvous handoff: `send` blocks until a connection worker is
        // free, which in turn blocks `accept` — bounded-pool backpressure
        // without an unbounded pending-connection buffer.
        let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(0);
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        for _ in 0..config.connection_workers {
            let shared = Arc::clone(&shared);
            let conn_rx = Arc::clone(&conn_rx);
            workers.push(std::thread::spawn(move || loop {
                let stream = {
                    let guard = conn_rx
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    guard.recv()
                };
                match stream {
                    Ok(stream) => handle_connection(stream, &shared),
                    Err(_) => return, // acceptor gone: shutdown
                }
            }));
        }

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.stop.load(Ordering::SeqCst) {
                        return; // conn_tx drops here, stopping the workers
                    }
                    match stream {
                        Ok(stream) => {
                            if conn_tx.send(stream).is_err() {
                                return;
                            }
                        }
                        Err(_) => continue,
                    }
                }
            })
        };

        Ok(Self {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves an ephemeral port request).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Users folded into the accumulator so far.
    pub fn num_users(&self) -> u64 {
        self.shared.sink.num_users()
    }

    /// Accepted reports that failed to fold (always `0` unless a validator
    /// / accumulator disagreement is introduced — monitored by tests).
    pub fn fold_failures(&self) -> u64 {
        self.shared.fold_failures.load(Ordering::SeqCst)
    }

    /// Freezes the merged accumulator view after draining the queue (or
    /// the current view as-is when draining cannot complete — paused
    /// ingest or shutdown). For tests and embedders; remote callers use
    /// the `Query` frame.
    pub fn snapshot(&self) -> AccumulatorSnapshot {
        self.shared
            .settled_snapshot()
            .unwrap_or_else(|_| self.shared.sink.snapshot())
    }

    /// Pauses folding: accepted reports stay queued, so the bounded queue
    /// fills and further pushes draw `Busy` — deterministic backpressure
    /// for tests and maintenance windows. Queries whose watermark needs
    /// still-queued reports answer with a typed `Reject` while paused
    /// (blocking them would park connection workers until resume).
    pub fn pause_ingest(&self) {
        self.shared.queue.set_paused(true);
    }

    /// Resumes folding after [`Self::pause_ingest`].
    pub fn resume_ingest(&self) {
        self.shared.queue.set_paused(false);
    }

    /// Orderly stop: refuse new work, wake every blocked thread, join them
    /// all. In-queue (accepted but unfolded) reports at this instant are
    /// discarded — clients that need durability send a `Checkpoint` frame
    /// first.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        // Unblock the acceptor with a throwaway connection, and workers
        // parked in a socket read by closing every live connection. A
        // server bound to an unspecified address (0.0.0.0 / ::) is not
        // connectable *at* that address on every platform, so the wake-up
        // aims at loopback on the bound port instead.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                std::net::IpAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                std::net::IpAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
            });
        }
        let _ = TcpStream::connect_timeout(&wake, std::time::Duration::from_secs(1));
        self.shared.close_connections();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Drains the ingest queue into the sharded accumulator, one whole batch
/// (one `Reports` frame) per pop: a frame costs one lock acquisition and
/// one batched fold ([`ShardedAccumulator::push_batch`]) instead of
/// per-report round trips. The [`crate::queue::BatchTicket`] from `pop`
/// is handed back to `mark_processed` so the queue's completion frontier
/// stays contiguous across workers — a query watermark is only satisfied
/// once every report below it is actually folded, not merely an equal
/// *count* of later ones.
fn ingest_worker(shared: &Shared) {
    while let Some((ticket, batch)) = shared.queue.pop() {
        let reports: Vec<Report<'_>> = batch.iter().map(ReportData::as_report).collect();
        if shared.sink.push_batch(&reports).is_err() {
            // Cannot happen for reports the connection workers validated
            // (the batched fold validates by the same core definition);
            // counted defensively, batch-atomically.
            shared
                .fold_failures
                .fetch_add(batch.len() as u64, Ordering::SeqCst);
        }
        shared.queue.mark_processed(ticket);
    }
}

/// Validates one decoded report against the negotiated mechanism config —
/// the *synchronous* half of ingestion, so every malformed report is
/// refused in the connection reply and accepted reports can never fail to
/// fold. The shape must be the connection's negotiated wire shape; the
/// content rules are the core [`idldp_core::report::Report::validate`],
/// the same definition `fold_into` enforces — which is what makes the
/// accepted ⇒ foldable invariant definitional rather than two hand-synced
/// rule sets.
fn validate_report(
    report: &ReportData,
    shape: ReportShape,
    report_len: usize,
) -> Result<(), String> {
    let matches_shape = matches!(
        (report, shape),
        (ReportData::Bits(_), ReportShape::Bits)
            | (ReportData::Value(_), ReportShape::Value)
            | (ReportData::Hashed { .. }, ReportShape::Hashed { .. })
            | (ReportData::ItemSet(_), ReportShape::ItemSet { .. })
    );
    if !matches_shape {
        let got = match report {
            ReportData::Bits(_) => "bit-vector",
            ReportData::Value(_) => "categorical value",
            ReportData::Hashed { .. } => "hashed (seed, value)",
            ReportData::ItemSet(_) => "item-set",
        };
        return Err(format!(
            "report shape mismatch: connection negotiated {}, got a {got} report",
            shape.label()
        ));
    }
    let shape_param = match shape {
        ReportShape::Hashed { range } => range,
        ReportShape::ItemSet { k } => k,
        _ => 0,
    };
    report
        .as_report()
        .validate(report_len, shape_param)
        .map_err(|e| e.to_string())
}

fn send(writer: &mut BufWriter<TcpStream>, frame: &Frame) -> Result<(), FrameError> {
    // A reply the peer would reject as Oversized (an estimate vector for
    // a multi-million-item domain) becomes a typed refusal instead of a
    // dead connection.
    if !frame.fits_one_frame() {
        let refusal = Frame::Reject {
            accepted: 0,
            message: format!(
                "reply exceeds the {} MiB frame cap (domain too large for one frame)",
                crate::frame::MAX_PAYLOAD_LEN >> 20
            ),
        };
        refusal.write_to(writer)?;
        writer.flush()?;
        return Ok(());
    }
    frame.write_to(writer)?;
    writer.flush()?;
    Ok(())
}

/// Serves one connection: handshake, then a frame loop until EOF. Protocol
/// violations answer with a typed [`Frame::Reject`]; socket errors just
/// drop the connection (the client observes the closed socket).
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    // An untrackable connection (clone failure under fd pressure) must be
    // dropped outright: shutdown could never close its socket, and a
    // silent peer would park this worker in a read forever.
    let Some(tracked) = shared.track(&stream) else {
        return;
    };
    let tracked = Some(tracked);
    // Checked *after* tracking: shutdown sets `stop` before closing the
    // tracked sockets, so a connection handed over concurrently is either
    // tracked in time to be closed, or sees `stop` here — either way no
    // worker can park in a read that nothing will ever wake
    // (`ReportServer::shutdown` joins these workers).
    if shared.stop.load(Ordering::SeqCst) {
        shared.untrack(tracked);
        return;
    }
    let reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    serve_frames(reader, &mut writer, shared);
    shared.untrack(tracked);
}

/// The framed request/response loop of one connection.
fn serve_frames(
    mut reader: BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
    shared: &Shared,
) {
    // Handshake: the first frame must be a matching Hello.
    match Frame::read_from(&mut reader) {
        Ok(Some(Frame::Hello {
            version,
            kind,
            shape,
            report_len,
            ldp_eps_bits,
        })) => {
            let mech = shared.mechanism.as_ref();
            let reject = if version != PROTOCOL_VERSION {
                Some(format!(
                    "protocol version {version} unsupported (server speaks {PROTOCOL_VERSION})"
                ))
            } else if kind != mech.kind()
                || shape != mech.report_shape()
                || report_len != mech.report_len() as u64
                // ε compared as exact bits, like the checkpoint stamp:
                // same-kind reports perturbed under a different budget
                // would fold cleanly but calibrate wrongly.
                || ldp_eps_bits != mech.ldp_epsilon().to_bits()
            {
                Some(format!(
                    "mechanism config mismatch: server runs kind={} shape={} report_len={} \
                     ldp_eps={}, client sent kind={kind} shape={} report_len={report_len} \
                     ldp_eps={}",
                    mech.kind(),
                    mech.report_shape().label(),
                    mech.report_len(),
                    mech.ldp_epsilon(),
                    shape.label(),
                    f64::from_bits(ldp_eps_bits)
                ))
            } else {
                None
            };
            if let Some(message) = reject {
                let _ = send(
                    writer,
                    &Frame::Reject {
                        accepted: 0,
                        message,
                    },
                );
                return;
            }
            if send(
                writer,
                &Frame::HelloAck {
                    users: shared.sink.num_users(),
                },
            )
            .is_err()
            {
                return;
            }
        }
        Ok(Some(_)) => {
            let _ = send(
                writer,
                &Frame::Reject {
                    accepted: 0,
                    message: "expected Hello as the first frame".into(),
                },
            );
            return;
        }
        Ok(None) => return,
        Err(e) => {
            let _ = send(
                writer,
                &Frame::Reject {
                    accepted: 0,
                    message: format!("handshake: {e}"),
                },
            );
            return;
        }
    }

    let shape = shared.mechanism.report_shape();
    let report_len = shared.mechanism.report_len();

    loop {
        let frame = match Frame::read_from(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) => return, // client closed cleanly
            Err(e) => {
                let _ = send(
                    writer,
                    &Frame::Reject {
                        accepted: 0,
                        message: format!("bad frame: {e}"),
                    },
                );
                return;
            }
        };
        let reply = match frame {
            Frame::Reports(reports) => {
                // The whole frame validates before anything is queued: a
                // hostile frame mixing valid and invalid reports is
                // rejected atomically — no partial fold, nothing to
                // un-count. (Backpressure is the one partial outcome:
                // `Busy{accepted}` names the queued prefix, which the
                // client re-sends from.)
                let invalid = reports.iter().enumerate().find_map(|(idx, report)| {
                    validate_report(report, shape, report_len)
                        .err()
                        .map(|e| format!("report {idx}: {e}"))
                });
                if let Some(message) = invalid {
                    Frame::Reject {
                        accepted: 0,
                        message,
                    }
                } else {
                    let batch_len = reports.len();
                    match shared.queue.try_push_batch(reports) {
                        Ok(accepted) if accepted == batch_len => Frame::Ingested {
                            accepted: accepted as u64,
                        },
                        Ok(accepted) => Frame::Busy {
                            accepted: accepted as u64,
                        },
                        Err(PushRefusal::Full) => Frame::Busy { accepted: 0 },
                        Err(PushRefusal::Closed) => Frame::Reject {
                            accepted: 0,
                            message: "server is shutting down".into(),
                        },
                    }
                }
            }
            Frame::Query => match shared.settled_estimates() {
                Ok((users, estimates)) => Frame::Estimates { users, estimates },
                Err(Settle::Refuse(message)) => Frame::Reject {
                    accepted: 0,
                    message,
                },
                Err(Settle::Shutdown) => return,
            },
            Frame::TopKQuery { k } => match shared.settled_estimates() {
                Ok((users, estimates)) => {
                    let items = top_k_indices(&estimates, k as usize)
                        .into_iter()
                        .map(|i| (i as u64, estimates[i]))
                        .collect();
                    Frame::Candidates { users, items }
                }
                Err(Settle::Refuse(message)) => Frame::Reject {
                    accepted: 0,
                    message,
                },
                Err(Settle::Shutdown) => return,
            },
            Frame::Checkpoint => match &shared.checkpoint_path {
                Some(path) => match shared.settled_snapshot() {
                    Ok(snapshot) => {
                        let trailer = format!("{}\n", shared.run_line());
                        match snapshot.write_checkpoint(path, &trailer) {
                            Ok(()) => Frame::CheckpointAck {
                                users: snapshot.num_users(),
                            },
                            Err(e) => Frame::Reject {
                                accepted: 0,
                                message: format!("checkpoint write: {e}"),
                            },
                        }
                    }
                    Err(Settle::Refuse(message)) => Frame::Reject {
                        accepted: 0,
                        message,
                    },
                    Err(Settle::Shutdown) => return,
                },
                None => Frame::Reject {
                    accepted: 0,
                    message: "server has no checkpoint path configured".into(),
                },
            },
            Frame::Hello { .. } => Frame::Reject {
                accepted: 0,
                message: "connection is already negotiated".into(),
            },
            other => Frame::Reject {
                accepted: 0,
                message: format!("unexpected frame on the server side: {other:?}"),
            },
        };
        if send(writer, &reply).is_err() {
            return;
        }
    }
}
