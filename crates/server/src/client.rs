//! The report client: the push half of the serve/push pair.
//!
//! A [`ReportClient`] speaks the strict request/response protocol of
//! [`crate::server::ReportServer`]: one `Hello` handshake, then any mix of
//! report batches and queries, each answered by exactly one frame. The
//! `Busy` backpressure reply surfaces as [`PushOutcome::Busy`] from
//! [`ReportClient::push`]; [`ReportClient::push_all`] wraps it in the
//! retry loop a well-behaved producer runs (resend the unaccepted tail
//! after a short backoff), so an ingestion burst slows down instead of
//! losing reports.

use crate::frame::{encoded_report_len, Frame, FrameError, MAX_PAYLOAD_LEN, PROTOCOL_VERSION};
use idldp_core::mechanism::Mechanism;
use idldp_core::report::ReportData;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The peer sent bytes that do not decode to a frame.
    Frame(FrameError),
    /// The server refused the request with a typed [`Frame::Reject`].
    Rejected {
        /// Reports of the offending batch that were still accepted.
        accepted: u64,
        /// The server's reason.
        message: String,
    },
    /// The peer answered with a frame the protocol does not allow here
    /// (or closed the connection mid-exchange).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o: {e}"),
            ClientError::Frame(e) => write!(f, "client frame: {e}"),
            ClientError::Rejected { accepted, message } => {
                write!(
                    f,
                    "server rejected the request (accepted {accepted}): {message}"
                )
            }
            ClientError::Protocol(detail) => write!(f, "protocol violation: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// Outcome of one [`ReportClient::push`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushOutcome {
    /// Every report of the batch was accepted.
    Ingested,
    /// The server's ingest queue filled after accepting `accepted`
    /// reports; the caller must resend the rest.
    Busy {
        /// Reports accepted before the refusal.
        accepted: u64,
    },
}

/// A connected, handshaken client.
pub struct ReportClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// Backoff between [`ReportClient::push_all`] retries after `Busy`.
    retry_backoff: Duration,
    /// Total `Busy` replies absorbed by [`ReportClient::push_all`].
    busy_retries: u64,
}

impl ReportClient {
    /// Connects and handshakes for `mechanism`'s report configuration.
    ///
    /// Returns the client and the server's current user count (nonzero
    /// when the server restored a checkpoint — the resume signal).
    ///
    /// # Errors
    /// Connection failures, a rejected handshake (config mismatch), or a
    /// protocol violation.
    pub fn connect<A: ToSocketAddrs>(
        addr: A,
        mechanism: &dyn Mechanism,
    ) -> Result<(Self, u64), ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let write_half = stream.try_clone()?;
        let mut client = Self {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
            retry_backoff: Duration::from_millis(2),
            busy_retries: 0,
        };
        let hello = Frame::Hello {
            version: PROTOCOL_VERSION,
            kind: mechanism.kind().to_string(),
            shape: mechanism.report_shape(),
            report_len: mechanism.report_len() as u64,
            ldp_eps_bits: mechanism.ldp_epsilon().to_bits(),
        };
        match client.exchange(&hello)? {
            Frame::HelloAck { users } => Ok((client, users)),
            other => Err(unexpected("HelloAck", &other)),
        }
    }

    /// Overrides the `Busy` retry backoff of [`Self::push_all`].
    pub fn with_retry_backoff(mut self, backoff: Duration) -> Self {
        self.retry_backoff = backoff;
        self
    }

    /// `Busy` replies absorbed by [`Self::push_all`] so far.
    pub fn busy_retries(&self) -> u64 {
        self.busy_retries
    }

    fn exchange(&mut self, request: &Frame) -> Result<Frame, ClientError> {
        request.write_to(&mut self.writer)?;
        self.writer.flush()?;
        self.read_reply()
    }

    fn read_reply(&mut self) -> Result<Frame, ClientError> {
        match Frame::read_from(&mut self.reader)? {
            Some(Frame::Reject { accepted, message }) => {
                Err(ClientError::Rejected { accepted, message })
            }
            Some(frame) => Ok(frame),
            None => Err(ClientError::Protocol(
                "server closed the connection mid-exchange".into(),
            )),
        }
    }

    /// Sends one report batch, surfacing backpressure to the caller.
    ///
    /// # Errors
    /// Transport errors, [`ClientError::Rejected`] when the server refused
    /// a report (its `accepted` count says how many of the batch were
    /// still queued), or a typed [`ClientError::Protocol`] when the batch
    /// would not fit one frame ([`Self::push_all`] splits automatically).
    pub fn push(&mut self, reports: &[ReportData]) -> Result<PushOutcome, ClientError> {
        let payload = 4 + reports.iter().map(encoded_report_len).sum::<usize>();
        if payload > MAX_PAYLOAD_LEN {
            return Err(ClientError::Protocol(format!(
                "batch of {} reports encodes to {payload} payload bytes, over the \
                 {MAX_PAYLOAD_LEN}-byte frame cap — split it (push_all does this)",
                reports.len()
            )));
        }
        // Encoded straight from the borrowed slice — no clone per (re)send,
        // which matters when Busy backpressure retries frame-cap-sized
        // batches.
        self.writer
            .write_all(&crate::frame::encode_reports_frame(reports))?;
        self.writer.flush()?;
        match self.read_reply()? {
            Frame::Ingested { accepted } if accepted == reports.len() as u64 => {
                Ok(PushOutcome::Ingested)
            }
            Frame::Ingested { accepted } => Err(ClientError::Protocol(format!(
                "server acknowledged {accepted} of {} reports without Busy",
                reports.len()
            ))),
            Frame::Busy { accepted } => Ok(PushOutcome::Busy { accepted }),
            other => Err(unexpected("Ingested/Busy", &other)),
        }
    }

    /// Pushes every report, splitting the batch so each `Reports` frame
    /// stays under [`MAX_PAYLOAD_LEN`] and absorbing `Busy` backpressure
    /// by resending the unaccepted tail after the configured backoff. No
    /// report is ever skipped or sent twice.
    ///
    /// # Errors
    /// Same conditions as [`Self::push`]; additionally a typed error if a
    /// *single* report cannot fit one frame (a report wider than ~128M
    /// bit slots — far beyond any real domain).
    pub fn push_all(&mut self, reports: &[ReportData]) -> Result<(), ClientError> {
        let mut rest = reports;
        while !rest.is_empty() {
            let count = frame_sized_prefix(rest)?;
            let (batch, tail) = rest.split_at(count);
            let mut pending = batch;
            loop {
                match self.push(pending)? {
                    PushOutcome::Ingested => break,
                    PushOutcome::Busy { accepted } => {
                        self.busy_retries += 1;
                        pending = &pending[accepted as usize..];
                        std::thread::sleep(self.retry_backoff);
                    }
                }
            }
            rest = tail;
        }
        Ok(())
    }

    /// Queries calibrated estimates over everything ingested so far (by
    /// any client). Returns `(users, estimates)`; estimates are the exact
    /// IEEE-754 bits the server computed.
    ///
    /// # Errors
    /// Transport errors or a server-side rejection.
    pub fn query_estimates(&mut self) -> Result<(u64, Vec<f64>), ClientError> {
        match self.exchange(&Frame::Query)? {
            Frame::Estimates { users, estimates } => Ok((users, estimates)),
            other => Err(unexpected("Estimates", &other)),
        }
    }

    /// Queries the current top-`k` heavy-hitter candidates (ranked
    /// `(item, estimate)` pairs).
    ///
    /// # Errors
    /// Transport errors or a server-side rejection.
    pub fn query_top_k(&mut self, k: usize) -> Result<(u64, Vec<(u64, f64)>), ClientError> {
        match self.exchange(&Frame::TopKQuery { k: k as u64 })? {
            Frame::Candidates { users, items } => Ok((users, items)),
            other => Err(unexpected("Candidates", &other)),
        }
    }

    /// Asks the server to persist its checkpoint; returns the user count
    /// the written checkpoint covers.
    ///
    /// # Errors
    /// Transport errors, or [`ClientError::Rejected`] when the server has
    /// no checkpoint path configured or the write failed.
    pub fn checkpoint(&mut self) -> Result<u64, ClientError> {
        match self.exchange(&Frame::Checkpoint)? {
            Frame::CheckpointAck { users } => Ok(users),
            other => Err(unexpected("CheckpointAck", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Frame) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, got {got:?}"))
}

/// Length of the longest prefix of `reports` whose `Reports` frame stays
/// under [`MAX_PAYLOAD_LEN`] (always ≥ 1 on success).
///
/// # Errors
/// A typed error when even the first report alone exceeds the cap.
fn frame_sized_prefix(reports: &[ReportData]) -> Result<usize, ClientError> {
    let mut payload = 4usize; // batch count prefix
    for (i, report) in reports.iter().enumerate() {
        payload += encoded_report_len(report);
        if payload > MAX_PAYLOAD_LEN {
            if i == 0 {
                return Err(ClientError::Protocol(format!(
                    "one report encodes to {payload} payload bytes, over the \
                     {MAX_PAYLOAD_LEN}-byte frame cap"
                )));
            }
            return Ok(i);
        }
    }
    Ok(reports.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_sized_prefix_packs_under_the_cap() {
        // ~1 MiB encoded per report: 16 fit (4 + 16·(5 + 2^20) < 16 MiB),
        // a 17th would not.
        let wide = ReportData::Bits(vec![1; 8 << 20]);
        let per = encoded_report_len(&wide);
        let fits = (MAX_PAYLOAD_LEN - 4) / per;
        let reports: Vec<ReportData> = std::iter::repeat_n(wide, fits + 3).collect();
        assert_eq!(frame_sized_prefix(&reports).unwrap(), fits);
        assert_eq!(frame_sized_prefix(&reports[..fits]).unwrap(), fits);
        // Small batches pass through whole.
        let small = vec![ReportData::Value(1); 1000];
        assert_eq!(frame_sized_prefix(&small).unwrap(), 1000);
        // A single impossible report is a typed error, not a panic or loop.
        let huge = ReportData::ItemSet(vec![0; (MAX_PAYLOAD_LEN / 8) + 1]);
        assert!(matches!(
            frame_sized_prefix(&[huge]),
            Err(ClientError::Protocol(_))
        ));
    }
}
