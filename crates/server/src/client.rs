//! The report client: the push half of the serve/push pair.
//!
//! A [`ReportClient`] speaks the strict request/response protocol of
//! [`crate::server::ReportServer`]: one `Hello` handshake, then any mix of
//! report batches and queries, each answered by exactly one frame. The
//! `Busy` backpressure reply surfaces as [`PushOutcome::Busy`] from
//! [`ReportClient::push`]; [`ReportClient::push_all`] wraps it in the
//! retry loop a well-behaved producer runs (resend the unaccepted tail
//! after a short backoff), so an ingestion burst slows down instead of
//! losing reports.

use crate::frame::{
    encoded_report_len, Frame, FrameError, MAX_BIT_REPORT_SLOTS, MAX_PAYLOAD_LEN, PROTOCOL_VERSION,
};
use idldp_core::identity::TenantId;
use idldp_core::mechanism::Mechanism;
use idldp_core::report::ReportData;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A typed request for [`ReportClient::query`] — every post-handshake
/// request/response exchange the protocol offers, in one place, so a new
/// query frame extends this enum (and the one settle/reassemble loop in
/// `query`) instead of growing a fourth hand-rolled method.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Query {
    /// Calibrated estimates over everything ingested so far →
    /// [`Reply::Estimates`].
    Estimates,
    /// The current top-`k` heavy-hitter candidates →
    /// [`Reply::Candidates`].
    TopK(usize),
    /// The raw merged accumulator counts (the coordinator's fetch path:
    /// integer counts merge exactly where calibrated floats would not) →
    /// [`Reply::Snapshot`].
    Snapshot,
    /// Persist a durable checkpoint server-side →
    /// [`Reply::CheckpointAck`].
    Checkpoint,
}

/// A settled, fully reassembled reply from [`ReportClient::query`]. Each
/// [`Query`] variant maps to exactly one `Reply` variant — chunked wire
/// replies (`EstimatesPart`, `Snapshot` continuations) arrive here
/// already reassembled and validated.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// Answer to [`Query::Estimates`]: the user count and the exact
    /// IEEE-754 estimate bits the server computed.
    Estimates {
        /// Users folded in when the query settled.
        users: u64,
        /// Calibrated per-item frequency estimates.
        estimates: Vec<f64>,
    },
    /// Answer to [`Query::TopK`]: ranked `(item, estimate)` pairs.
    Candidates {
        /// Users folded in when the query settled.
        users: u64,
        /// The top-k candidates, best first.
        items: Vec<(u64, f64)>,
    },
    /// Answer to [`Query::Snapshot`]: the raw merged counts.
    Snapshot {
        /// Users folded in when the query settled.
        users: u64,
        /// The merged accumulator counts.
        counts: Vec<u64>,
    },
    /// Answer to [`Query::Checkpoint`]: the user count the written
    /// checkpoint covers.
    CheckpointAck {
        /// Users covered by the durable checkpoint.
        users: u64,
    },
}

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The peer sent bytes that do not decode to a frame.
    Frame(FrameError),
    /// The server refused the request with a typed [`Frame::Reject`].
    Rejected {
        /// Reports of the offending batch that were still accepted.
        accepted: u64,
        /// The server's reason.
        message: String,
    },
    /// The peer answered with a frame the protocol does not allow here
    /// (or closed the connection mid-exchange).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o: {e}"),
            ClientError::Frame(e) => write!(f, "client frame: {e}"),
            ClientError::Rejected { accepted, message } => {
                write!(
                    f,
                    "server rejected the request (accepted {accepted}): {message}"
                )
            }
            ClientError::Protocol(detail) => write!(f, "protocol violation: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// Consecutive zero-progress `Busy` replies [`ReportClient::push_all`]
/// tolerates before giving up with a typed error. With the default 2 ms
/// base backoff doubling to a ~1 s cap, this rides out roughly a minute
/// of full-queue backpressure — far beyond a transient burst, short
/// enough that a paused or wedged server surfaces as an error instead of
/// a silent infinite retry loop.
pub const MAX_STALLED_RETRIES: u32 = 64;

/// Outcome of one [`ReportClient::push`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushOutcome {
    /// Every report of the batch was accepted.
    Ingested,
    /// The server's ingest queue filled after accepting `accepted`
    /// reports; the caller must resend the rest.
    Busy {
        /// Reports accepted before the refusal.
        accepted: u64,
    },
}

/// A connected, handshaken client.
pub struct ReportClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// Backoff between [`ReportClient::push_all`] retries after `Busy`.
    retry_backoff: Duration,
    /// Total `Busy` replies absorbed by [`ReportClient::push_all`].
    busy_retries: u64,
    /// The server's run-identity line from the `HelloAck`.
    server_run_line: String,
}

impl ReportClient {
    /// Connects and handshakes for `mechanism`'s report configuration,
    /// against the server's default tenant. Equivalent to
    /// [`Self::connect_tenant`] with no tenant.
    ///
    /// Returns the client and the server's current user count (nonzero
    /// when the server restored a checkpoint — the resume signal).
    ///
    /// # Errors
    /// Connection failures, a rejected handshake (config mismatch), or a
    /// protocol violation.
    pub fn connect<A: ToSocketAddrs>(
        addr: A,
        mechanism: &dyn Mechanism,
    ) -> Result<(Self, u64), ClientError> {
        Self::connect_tenant(addr, mechanism, None)
    }

    /// Connects and handshakes for `mechanism`'s report configuration
    /// against the named tenant of a multi-tenant server (`None` selects
    /// the default tenant). The v4 `Hello` names the tenant; the server
    /// checks the announced config against *that tenant's* mechanism and
    /// answers with that tenant's run identity and user count.
    ///
    /// # Errors
    /// Connection failures, a rejected handshake (unknown tenant or a
    /// config mismatch with the selected tenant), or a protocol
    /// violation.
    pub fn connect_tenant<A: ToSocketAddrs>(
        addr: A,
        mechanism: &dyn Mechanism,
        tenant: Option<&TenantId>,
    ) -> Result<(Self, u64), ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let write_half = stream.try_clone()?;
        let mut client = Self {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
            retry_backoff: Duration::from_millis(2),
            busy_retries: 0,
            server_run_line: String::new(),
        };
        let hello = Frame::Hello {
            version: PROTOCOL_VERSION,
            kind: mechanism.kind().to_string(),
            shape: mechanism.report_shape(),
            report_len: mechanism.report_len() as u64,
            ldp_eps_bits: mechanism.ldp_epsilon().to_bits(),
            tenant: tenant.map(|t| t.as_str().to_string()).unwrap_or_default(),
        };
        match client.exchange(&hello)? {
            Frame::HelloAck { users, run_line } => {
                client.server_run_line = run_line;
                Ok((client, users))
            }
            other => Err(unexpected("HelloAck", &other)),
        }
    }

    /// The server's run-identity line from its `HelloAck` — mechanism
    /// kind, shape, width, exact ε bits, plus the embedder's config stamp.
    /// A coordinator compares these across collectors to refuse a fleet
    /// with mixed mechanism/m/ε/seed configurations.
    pub fn server_run_line(&self) -> &str {
        &self.server_run_line
    }

    /// Overrides the `Busy` retry backoff of [`Self::push_all`].
    pub fn with_retry_backoff(mut self, backoff: Duration) -> Self {
        self.retry_backoff = backoff;
        self
    }

    /// `Busy` replies absorbed by [`Self::push_all`] so far.
    pub fn busy_retries(&self) -> u64 {
        self.busy_retries
    }

    fn exchange(&mut self, request: &Frame) -> Result<Frame, ClientError> {
        request.write_to(&mut self.writer)?;
        self.writer.flush()?;
        self.read_reply()
    }

    fn read_reply(&mut self) -> Result<Frame, ClientError> {
        match Frame::read_from(&mut self.reader)? {
            Some(Frame::Reject { accepted, message }) => {
                Err(ClientError::Rejected { accepted, message })
            }
            Some(frame) => Ok(frame),
            None => Err(ClientError::Protocol(
                "server closed the connection mid-exchange".into(),
            )),
        }
    }

    /// Sends one report batch, surfacing backpressure to the caller.
    ///
    /// # Errors
    /// Transport errors, [`ClientError::Rejected`] when the server refused
    /// a report (its `accepted` count says how many of the batch were
    /// still queued), or a typed [`ClientError::Protocol`] when the batch
    /// would not fit one frame ([`Self::push_all`] splits automatically)
    /// or a bit report violates the wire form (wider than
    /// [`MAX_BIT_REPORT_SLOTS`], or a slot outside 0/1 — the packed
    /// encoding cannot represent other values, and silently coercing them
    /// would accept a report the local fold path rejects).
    pub fn push(&mut self, reports: &[ReportData]) -> Result<PushOutcome, ClientError> {
        for report in reports {
            if let ReportData::Bits(bits) = report {
                if bits.len() > MAX_BIT_REPORT_SLOTS {
                    return Err(ClientError::Protocol(format!(
                        "bit report of {} slots exceeds the protocol's \
                         {MAX_BIT_REPORT_SLOTS}-slot width cap",
                        bits.len()
                    )));
                }
                if let Some(&bad) = bits.iter().find(|&&b| b > 1) {
                    return Err(ClientError::Protocol(format!(
                        "bit report slots must be 0/1 (got {bad}) — the packed wire \
                         form cannot carry other values"
                    )));
                }
            }
        }
        let payload = 4 + reports.iter().map(encoded_report_len).sum::<usize>();
        if payload > MAX_PAYLOAD_LEN {
            return Err(ClientError::Protocol(format!(
                "batch of {} reports encodes to {payload} payload bytes, over the \
                 {MAX_PAYLOAD_LEN}-byte frame cap — split it (push_all does this)",
                reports.len()
            )));
        }
        // Encoded straight from the borrowed slice — no clone per (re)send,
        // which matters when Busy backpressure retries frame-cap-sized
        // batches.
        self.writer
            .write_all(&crate::frame::encode_reports_frame(reports))?;
        self.writer.flush()?;
        match self.read_reply()? {
            Frame::Ingested { accepted } if accepted == reports.len() as u64 => {
                Ok(PushOutcome::Ingested)
            }
            Frame::Ingested { accepted } => Err(ClientError::Protocol(format!(
                "server acknowledged {accepted} of {} reports without Busy",
                reports.len()
            ))),
            // `accepted` must be a strict prefix of the batch — a server
            // that accepted everything replies Ingested, and a count past
            // the batch end would make the caller's resend slice nonsense
            // (push_all indexes pending[accepted..]).
            Frame::Busy { accepted } if (accepted as usize) < reports.len() => {
                Ok(PushOutcome::Busy { accepted })
            }
            Frame::Busy { accepted } => Err(ClientError::Protocol(format!(
                "server answered Busy claiming {accepted} accepted of a {}-report batch",
                reports.len()
            ))),
            other => Err(unexpected("Ingested/Busy", &other)),
        }
    }

    /// Pushes every report, splitting the batch so each `Reports` frame
    /// stays under [`MAX_PAYLOAD_LEN`] and absorbing `Busy` backpressure
    /// by resending the unaccepted tail after the configured backoff
    /// (doubling, capped at 512× the base, while the server makes no
    /// progress). No report is ever skipped or sent twice.
    ///
    /// # Errors
    /// Same conditions as [`Self::push`]; additionally a typed error if a
    /// *single* report cannot fit one frame (an item set of ~2M members —
    /// far beyond any real domain), a bit report is wider than
    /// [`MAX_BIT_REPORT_SLOTS`], or the server answers `Busy` without
    /// accepting anything [`MAX_STALLED_RETRIES`] times in a row (ingest
    /// paused or wedged) — a bounded, visible failure instead of retrying
    /// silently forever.
    pub fn push_all(&mut self, reports: &[ReportData]) -> Result<(), ClientError> {
        let backoff_cap = self.retry_backoff.saturating_mul(512);
        let mut rest = reports;
        while !rest.is_empty() {
            let count = frame_sized_prefix(rest)?;
            let (batch, tail) = rest.split_at(count);
            let mut pending = batch;
            let mut stalled = 0u32;
            let mut backoff = self.retry_backoff;
            loop {
                match self.push(pending)? {
                    PushOutcome::Ingested => break,
                    PushOutcome::Busy { accepted } => {
                        self.busy_retries += 1;
                        if accepted > 0 {
                            pending = &pending[accepted as usize..];
                            stalled = 0;
                            backoff = self.retry_backoff;
                        } else {
                            stalled += 1;
                            if stalled >= MAX_STALLED_RETRIES {
                                return Err(ClientError::Protocol(format!(
                                    "server answered Busy without progress {stalled} times \
                                     in a row — ingest appears stalled; {} reports of the \
                                     current batch unsent",
                                    pending.len()
                                )));
                            }
                            backoff = backoff.saturating_mul(2).min(backoff_cap);
                        }
                        std::thread::sleep(backoff);
                    }
                }
            }
            rest = tail;
        }
        Ok(())
    }

    /// Runs one typed request/response exchange: sends the query frame,
    /// settles on the reply, and reassembles chunked replies
    /// (`EstimatesPart` / `Snapshot` continuations) transparently. This is
    /// the *one* settle/reassemble loop — [`Self::query_estimates`],
    /// [`Self::query_snapshot`], [`Self::query_top_k`], and
    /// [`Self::checkpoint`] are thin wrappers over it, so the next query
    /// frame extends [`Query`]/[`Reply`] instead of cloning this logic.
    ///
    /// # Errors
    /// Transport errors, a server-side rejection
    /// ([`ClientError::Rejected`]), or a typed [`ClientError::Protocol`]
    /// when the server's reply does not answer the query or its chunks
    /// are inconsistent (out of order, disagreeing headers).
    pub fn query(&mut self, query: Query) -> Result<Reply, ClientError> {
        match query {
            Query::Estimates => match self.exchange(&Frame::Query)? {
                Frame::Estimates { users, estimates } => Ok(Reply::Estimates { users, estimates }),
                Frame::EstimatesPart {
                    users,
                    total,
                    offset,
                    estimates,
                } => {
                    let estimates =
                        self.reassemble("estimates", users, total, offset, estimates, |frame| {
                            match frame {
                                Frame::EstimatesPart {
                                    users,
                                    total,
                                    offset,
                                    estimates,
                                } => Ok((users, total, offset, estimates)),
                                other => Err(unexpected("EstimatesPart", &other)),
                            }
                        })?;
                    Ok(Reply::Estimates { users, estimates })
                }
                other => Err(unexpected("Estimates", &other)),
            },
            Query::TopK(k) => match self.exchange(&Frame::TopKQuery { k: k as u64 })? {
                Frame::Candidates { users, items } => Ok(Reply::Candidates { users, items }),
                other => Err(unexpected("Candidates", &other)),
            },
            Query::Snapshot => match self.exchange(&Frame::SnapshotQuery)? {
                Frame::Snapshot {
                    users,
                    total,
                    offset,
                    counts,
                } => {
                    let counts =
                        self.reassemble("snapshot", users, total, offset, counts, |frame| {
                            match frame {
                                Frame::Snapshot {
                                    users,
                                    total,
                                    offset,
                                    counts,
                                } => Ok((users, total, offset, counts)),
                                other => Err(unexpected("Snapshot", &other)),
                            }
                        })?;
                    Ok(Reply::Snapshot { users, counts })
                }
                other => Err(unexpected("Snapshot", &other)),
            },
            Query::Checkpoint => match self.exchange(&Frame::Checkpoint)? {
                Frame::CheckpointAck { users } => Ok(Reply::CheckpointAck { users }),
                other => Err(unexpected("CheckpointAck", &other)),
            },
        }
    }

    /// Reads and validates continuation chunks until the vector announced
    /// by the first chunk's header is complete. `next` projects each
    /// subsequent frame to its `(users, total, offset, chunk)` header or a
    /// typed mismatch error.
    fn reassemble<T>(
        &mut self,
        what: &str,
        users: u64,
        total: u64,
        offset: u64,
        first: Vec<T>,
        next: impl Fn(Frame) -> Result<(u64, u64, u64, Vec<T>), ClientError>,
    ) -> Result<Vec<T>, ClientError> {
        let mut acc = ChunkAccumulator::start(what, users, total, offset)?;
        acc.push(first)?;
        while !acc.complete() {
            let (users, total, offset, chunk) = next(self.read_reply()?)?;
            acc.check_next(what, users, total, offset)?;
            acc.push(chunk)?;
        }
        Ok(acc.into_vec())
    }

    /// Queries calibrated estimates over everything ingested so far (by
    /// any client). Returns `(users, estimates)`; estimates are the exact
    /// IEEE-754 bits the server computed. A thin wrapper over
    /// [`Self::query`] with [`Query::Estimates`], kept for callers that
    /// want the tuple shape.
    ///
    /// # Errors
    /// Same conditions as [`Self::query`].
    pub fn query_estimates(&mut self) -> Result<(u64, Vec<f64>), ClientError> {
        match self.query(Query::Estimates)? {
            Reply::Estimates { users, estimates } => Ok((users, estimates)),
            _ => unreachable!("query(Estimates) answers with Reply::Estimates by construction"),
        }
    }

    /// Queries the server's raw merged accumulator counts (the snapshot
    /// body). Returns `(users, counts)`. A thin wrapper over
    /// [`Self::query`] with [`Query::Snapshot`], kept for callers that
    /// want the tuple shape.
    ///
    /// # Errors
    /// Same conditions as [`Self::query`].
    pub fn query_snapshot(&mut self) -> Result<(u64, Vec<u64>), ClientError> {
        match self.query(Query::Snapshot)? {
            Reply::Snapshot { users, counts } => Ok((users, counts)),
            _ => unreachable!("query(Snapshot) answers with Reply::Snapshot by construction"),
        }
    }

    /// Queries the current top-`k` heavy-hitter candidates (ranked
    /// `(item, estimate)` pairs). A thin wrapper over [`Self::query`]
    /// with [`Query::TopK`], kept for callers that want the tuple shape.
    ///
    /// # Errors
    /// Same conditions as [`Self::query`].
    pub fn query_top_k(&mut self, k: usize) -> Result<(u64, Vec<(u64, f64)>), ClientError> {
        match self.query(Query::TopK(k))? {
            Reply::Candidates { users, items } => Ok((users, items)),
            _ => unreachable!("query(TopK) answers with Reply::Candidates by construction"),
        }
    }

    /// Asks the server to persist its checkpoint; returns the user count
    /// the written checkpoint covers. A thin wrapper over [`Self::query`]
    /// with [`Query::Checkpoint`].
    ///
    /// # Errors
    /// Same conditions as [`Self::query`]; notably
    /// [`ClientError::Rejected`] when the server has no checkpoint path
    /// configured or the write failed.
    pub fn checkpoint(&mut self) -> Result<u64, ClientError> {
        match self.query(Query::Checkpoint)? {
            Reply::CheckpointAck { users } => Ok(users),
            _ => {
                unreachable!("query(Checkpoint) answers with Reply::CheckpointAck by construction")
            }
        }
    }
}

fn unexpected(wanted: &str, got: &Frame) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, got {got:?}"))
}

/// Reassembles a chunked reply (`EstimatesPart` / `Snapshot` chunks):
/// chunks must arrive contiguously from offset 0 with consistent
/// `users`/`total` headers, and every non-final chunk must make progress —
/// so a hostile or buggy server yields a typed error, never a hang or a
/// silently misassembled vector. Memory grows only with elements actually
/// received (each chunk already passed the frame cap), not with the
/// claimed `total`.
struct ChunkAccumulator<T> {
    users: u64,
    total: u64,
    got: Vec<T>,
}

impl<T> ChunkAccumulator<T> {
    fn start(what: &str, users: u64, total: u64, offset: u64) -> Result<Self, ClientError> {
        if offset != 0 {
            return Err(ClientError::Protocol(format!(
                "{what} reply started at offset {offset}, not 0"
            )));
        }
        if usize::try_from(total).is_err() {
            return Err(ClientError::Protocol(format!(
                "{what} total {total} overflows usize"
            )));
        }
        Ok(Self {
            users,
            total,
            got: Vec::new(),
        })
    }

    fn check_next(
        &self,
        what: &str,
        users: u64,
        total: u64,
        offset: u64,
    ) -> Result<(), ClientError> {
        if users != self.users || total != self.total {
            return Err(ClientError::Protocol(format!(
                "{what} chunk header changed mid-reply: users {users} (was {}), \
                 total {total} (was {})",
                self.users, self.total
            )));
        }
        if offset != self.got.len() as u64 {
            return Err(ClientError::Protocol(format!(
                "{what} chunk at offset {offset}, expected {} (chunks must be contiguous)",
                self.got.len()
            )));
        }
        Ok(())
    }

    fn push(&mut self, chunk: Vec<T>) -> Result<(), ClientError> {
        // The decoder already rejected offset + len > total, and offsets
        // are contiguous, so this cannot overshoot — but a zero-progress
        // chunk before completion would loop forever waiting for more.
        if chunk.is_empty() && !self.complete() {
            return Err(ClientError::Protocol(
                "empty reply chunk before the vector was complete".into(),
            ));
        }
        self.got.extend(chunk);
        Ok(())
    }

    fn complete(&self) -> bool {
        self.got.len() as u64 == self.total
    }

    fn into_vec(self) -> Vec<T> {
        self.got
    }
}

/// Length of the longest prefix of `reports` whose `Reports` frame stays
/// under [`MAX_PAYLOAD_LEN`] (always ≥ 1 on success).
///
/// # Errors
/// A typed error when even the first report alone exceeds the cap.
fn frame_sized_prefix(reports: &[ReportData]) -> Result<usize, ClientError> {
    let mut payload = 4usize; // batch count prefix
    for (i, report) in reports.iter().enumerate() {
        payload += encoded_report_len(report);
        if payload > MAX_PAYLOAD_LEN {
            if i == 0 {
                return Err(ClientError::Protocol(format!(
                    "one report encodes to {payload} payload bytes, over the \
                     {MAX_PAYLOAD_LEN}-byte frame cap"
                )));
            }
            return Ok(i);
        }
    }
    Ok(reports.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake server that speaks raw frames lets the client's defenses be
    /// tested against replies a real `ReportServer` never produces: a
    /// `Busy` claiming more accepted reports than the batch held must be a
    /// typed protocol error, not an out-of-bounds resend slice. The
    /// client-side wire-form checks (non-0/1 bit slots) fire before any
    /// bytes are written.
    #[test]
    fn hostile_busy_counts_and_bad_bit_slots_are_typed_errors() {
        use idldp_core::budget::Epsilon;
        use idldp_core::grr::GeneralizedRandomizedResponse;
        use std::io::BufRead;

        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let fake_server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = BufWriter::new(stream);
            match Frame::read_from(&mut reader).unwrap() {
                Some(Frame::Hello { .. }) => {}
                other => panic!("expected Hello, got {other:?}"),
            }
            Frame::HelloAck {
                users: 0,
                run_line: String::new(),
            }
            .write_to(&mut writer)
            .unwrap();
            writer.flush().unwrap();
            match Frame::read_from(&mut reader).unwrap() {
                Some(Frame::Reports(batch)) => assert_eq!(batch.len(), 3),
                other => panic!("expected Reports, got {other:?}"),
            }
            // Claim more accepted than the batch held.
            Frame::Busy { accepted: 1000 }
                .write_to(&mut writer)
                .unwrap();
            writer.flush().unwrap();
            // Drain until the client hangs up so its writes cannot fail on
            // a closed socket before it reads the Busy reply.
            let _ = reader.fill_buf();
        });

        let mechanism = GeneralizedRandomizedResponse::new(Epsilon::new(1.0).unwrap(), 4).unwrap();
        let (mut client, users) = ReportClient::connect(addr, &mechanism).unwrap();
        assert_eq!(users, 0);

        // Refused before any bytes hit the wire.
        let bad_bits = [ReportData::Bits(vec![2, 0, 1])];
        assert!(matches!(
            client.push(&bad_bits),
            Err(ClientError::Protocol(_))
        ));
        let too_wide = [ReportData::Bits(vec![0; MAX_BIT_REPORT_SLOTS + 1])];
        assert!(matches!(
            client.push(&too_wide),
            Err(ClientError::Protocol(_))
        ));

        // The hostile Busy count is a typed error, not a panic.
        let batch = vec![ReportData::Value(1); 3];
        assert!(matches!(client.push(&batch), Err(ClientError::Protocol(_))));
        drop(client);
        fake_server.join().unwrap();
    }

    /// A server that answers `Busy` without ever accepting anything must
    /// turn into a bounded typed error, not an infinite silent retry loop
    /// (`idldp push` would otherwise hang forever against a paused or
    /// wedged server).
    #[test]
    fn zero_progress_busy_is_bounded() {
        use idldp_core::budget::Epsilon;
        use idldp_core::grr::GeneralizedRandomizedResponse;

        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let fake_server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = BufWriter::new(stream);
            assert!(matches!(
                Frame::read_from(&mut reader).unwrap(),
                Some(Frame::Hello { .. })
            ));
            Frame::HelloAck {
                users: 0,
                run_line: String::new(),
            }
            .write_to(&mut writer)
            .unwrap();
            writer.flush().unwrap();
            let mut busies = 0u32;
            while let Ok(Some(Frame::Reports(_))) = Frame::read_from(&mut reader) {
                Frame::Busy { accepted: 0 }.write_to(&mut writer).unwrap();
                writer.flush().unwrap();
                busies += 1;
            }
            busies
        });

        let mechanism = GeneralizedRandomizedResponse::new(Epsilon::new(1.0).unwrap(), 4).unwrap();
        let (client, _) = ReportClient::connect(addr, &mechanism).unwrap();
        let mut client = client.with_retry_backoff(Duration::ZERO);
        let reports = vec![ReportData::Value(1); 8];
        match client.push_all(&reports) {
            Err(ClientError::Protocol(message)) => {
                assert!(message.contains("stalled"), "unexpected reason: {message}")
            }
            other => panic!("expected a typed stall error, got {other:?}"),
        }
        assert_eq!(client.busy_retries(), u64::from(MAX_STALLED_RETRIES));
        drop(client);
        assert_eq!(fake_server.join().unwrap(), MAX_STALLED_RETRIES);
    }

    #[test]
    fn frame_sized_prefix_packs_under_the_cap() {
        // ~1 MiB encoded per report: 16 fit (4 + 16·(5 + 2^20) < 16 MiB),
        // a 17th would not.
        let wide = ReportData::Bits(vec![1; 8 << 20]);
        let per = encoded_report_len(&wide);
        let fits = (MAX_PAYLOAD_LEN - 4) / per;
        let reports: Vec<ReportData> = std::iter::repeat_n(wide, fits + 3).collect();
        assert_eq!(frame_sized_prefix(&reports).unwrap(), fits);
        assert_eq!(frame_sized_prefix(&reports[..fits]).unwrap(), fits);
        // Small batches pass through whole.
        let small = vec![ReportData::Value(1); 1000];
        assert_eq!(frame_sized_prefix(&small).unwrap(), 1000);
        // A single impossible report is a typed error, not a panic or loop.
        let huge = ReportData::ItemSet(vec![0; (MAX_PAYLOAD_LEN / 8) + 1]);
        assert!(matches!(
            frame_sized_prefix(&[huge]),
            Err(ClientError::Protocol(_))
        ));
    }
}
