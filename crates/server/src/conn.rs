//! Engine-independent connection protocol logic.
//!
//! Both connection engines — the thread-per-connection blocking engine and
//! the readiness reactor (`reactor.rs`) — drive the *same* per-connection
//! protocol: Hello handshake, then a frame loop where `Reports` meet the
//! bounded queue's typed `Busy` backpressure and queries linearize on the
//! accept watermark. This module is that protocol, factored free of any
//! transport: every function here maps a decoded [`Frame`] (plus the
//! shared server state) to a [`FrameAction`], and never touches a socket.
//! The engines differ only in *how* they read bytes, flush replies, and
//! wait out a query's watermark — which is exactly why the loopback
//! conformance suite can demand bit-identical behaviour from both.
//!
//! The query path is split in two on purpose: [`apply_frame`] captures the
//! accept watermark *at frame-processing time* (the linearization point)
//! and returns [`FrameAction::Settle`]; [`settle_reply`] then builds the
//! reply once the fold frontier's verdict ([`WaitOutcome`]) is in. The
//! blocking engine reaches the verdict by parking in
//! [`IngestQueue::wait_processed`]; the reactor polls
//! [`IngestQueue::poll_processed`] between events — same watermark, same
//! verdict mapping, so the reply bytes cannot depend on the engine.
//!
//! [`IngestQueue::wait_processed`]: crate::queue::IngestQueue::wait_processed
//! [`IngestQueue::poll_processed`]: crate::queue::IngestQueue::poll_processed

use crate::frame::{Frame, LEGACY_PROTOCOL_VERSION, PROTOCOL_VERSION};
use crate::queue::{PushRefusal, WaitOutcome};
use crate::server::{Shared, Tenant};
use idldp_core::report::{ReportData, ReportShape};
use idldp_num::vecops::top_k_indices;

/// The reply [`settle_reply`] gives while ingest is paused and the query's
/// watermark needs still-queued reports (blocking would park the
/// connection until resume).
pub(crate) const PAUSED_MSG: &str =
    "ingest is paused; accepted reports are not yet folded — retry after resume";

/// What a negotiated connection should do with one decoded frame.
pub(crate) enum FrameAction {
    /// Send this reply and keep serving.
    Reply(Frame),
    /// The frame is a query: its watermark is captured; produce the reply
    /// via [`settle_reply`] once the fold frontier reaches it.
    Settle(PendingQuery),
}

/// A query waiting for the fold frontier: which reply to build, pinned to
/// the accept watermark captured when the query frame was processed.
pub(crate) struct PendingQuery {
    /// Which reply to build once settled.
    pub(crate) kind: QueryKind,
    /// The tenant the connection bound to at handshake — the query
    /// settles against (and answers from) this tenant's queue and
    /// accumulator only.
    pub(crate) tenant: usize,
    /// The accept watermark at the query's linearization point.
    pub(crate) watermark: u64,
}

/// The reply family of a pending query.
pub(crate) enum QueryKind {
    /// `Query` → `Estimates`.
    Estimates,
    /// `TopKQuery { k }` → `Candidates`.
    TopK(u64),
    /// `Checkpoint` → `CheckpointAck` (the path is known to be configured;
    /// [`apply_frame`] rejects the frame outright otherwise).
    Checkpoint,
    /// `SnapshotQuery` → `Snapshot` (raw merged counts — what a
    /// coordinator fetches, since integer counts merge exactly where
    /// calibrated floats would not).
    Snapshot,
}

fn reject(message: impl Into<String>) -> Frame {
    Frame::Reject {
        accepted: 0,
        message: message.into(),
    }
}

/// The tenant name a [`Frame::Hello`] carries (the empty string is every
/// v3 client and a v4 client selecting the default tenant); `None` when
/// the frame is not a `Hello` at all. Public for single-stream frontends
/// — the coordinator hosts exactly one stream and refuses named tenants
/// through this before [`check_hello`].
#[must_use]
pub fn hello_tenant(frame: &Frame) -> Option<&str> {
    match frame {
        Frame::Hello { tenant, .. } => Some(tenant),
        _ => None,
    }
}

/// The protocol versions a server accepts: the current version, and the
/// immediately preceding one (a v3 `Hello` cannot name a tenant, so it
/// lands on the default tenant — old clients keep working against
/// multi-tenant servers).
fn check_hello_version(version: u32) -> Result<(), String> {
    if version != PROTOCOL_VERSION && version != LEGACY_PROTOCOL_VERSION {
        return Err(format!(
            "protocol version {version} unsupported (server speaks \
             {PROTOCOL_VERSION}, accepts {LEGACY_PROTOCOL_VERSION})"
        ));
    }
    Ok(())
}

/// Validates a connection's first frame against a mechanism config: it
/// must be a [`Frame::Hello`] of an accepted protocol version announcing
/// exactly this mechanism's kind/shape/width/ε. Shared by both server
/// engines (via the internal `apply_hello`, against the *selected
/// tenant's* mechanism) and the coordinator frontend, which speaks the
/// same handshake on behalf of its collector fleet — one implementation,
/// so the acceptance rule cannot drift. Tenant selection is deliberately
/// not this function's business: the server resolves the name first via
/// its registry, the coordinator refuses named tenants via
/// [`hello_tenant`].
///
/// # Errors
/// The human-readable refusal to send in a [`Frame::Reject`].
pub fn check_hello(
    mech: &dyn idldp_core::mechanism::Mechanism,
    frame: &Frame,
) -> Result<(), String> {
    let Frame::Hello {
        version,
        kind,
        shape,
        report_len,
        ldp_eps_bits,
        tenant: _,
    } = frame
    else {
        return Err("expected Hello as the first frame".into());
    };
    check_hello_version(*version)?;
    if *kind != mech.kind()
        || *shape != mech.report_shape()
        || *report_len != mech.report_len() as u64
        // ε compared as exact bits, like the checkpoint stamp: same-kind
        // reports perturbed under a different budget would fold cleanly
        // but calibrate wrongly.
        || *ldp_eps_bits != mech.ldp_epsilon().to_bits()
    {
        return Err(format!(
            "mechanism config mismatch: server runs kind={} shape={} report_len={} \
             ldp_eps={}, client sent kind={kind} shape={} report_len={report_len} \
             ldp_eps={}",
            mech.kind(),
            mech.report_shape().label(),
            mech.report_len(),
            mech.ldp_epsilon(),
            shape.label(),
            f64::from_bits(*ldp_eps_bits)
        ));
    }
    Ok(())
}

/// Handles the first frame of a connection: resolves the named tenant,
/// checks the announced config against *that tenant's* mechanism, and
/// binds the connection to the tenant. `Ok` is the tenant index plus the
/// `HelloAck` to send before entering the frame loop; `Err` is the
/// `Reject` to send before closing (version mismatch, unknown tenant,
/// config mismatch, or not a Hello at all).
pub(crate) fn apply_hello(shared: &Shared, frame: Frame) -> Result<(usize, Frame), Frame> {
    let Frame::Hello {
        version,
        tenant: ref tenant_name,
        ..
    } = frame
    else {
        return Err(reject("expected Hello as the first frame"));
    };
    // Version precedes tenant resolution: an unsupported version draws the
    // version refusal even if it happens to name a known tenant.
    check_hello_version(version).map_err(reject)?;
    let index = shared.resolve_tenant(tenant_name).map_err(reject)?;
    let tenant = shared.tenant(index);
    check_hello(tenant.mechanism.as_ref(), &frame).map_err(reject)?;
    Ok((
        index,
        Frame::HelloAck {
            users: tenant.sink.num_users(),
            // The same stamp this tenant's checkpoints carry — lets a
            // coordinator refuse a collector whose config (including the
            // CLI seed) differs from the rest of its fleet.
            run_line: tenant.run_line(),
        },
    ))
}

/// Validates one decoded report against the negotiated mechanism config —
/// the *synchronous* half of ingestion, so every malformed report is
/// refused in the connection reply and accepted reports can never fail to
/// fold. The shape must be the connection's negotiated wire shape; the
/// content rules are the core [`idldp_core::report::Report::validate`],
/// the same definition `fold_into` enforces — which is what makes the
/// accepted ⇒ foldable invariant definitional rather than two hand-synced
/// rule sets.
fn validate_report(
    report: &ReportData,
    shape: ReportShape,
    report_len: usize,
) -> Result<(), String> {
    let matches_shape = matches!(
        (report, shape),
        (ReportData::Bits(_), ReportShape::Bits)
            | (ReportData::Value(_), ReportShape::Value)
            | (ReportData::Hashed { .. }, ReportShape::Hashed { .. })
            | (ReportData::ItemSet(_), ReportShape::ItemSet { .. })
    );
    if !matches_shape {
        let got = match report {
            ReportData::Bits(_) => "bit-vector",
            ReportData::Value(_) => "categorical value",
            ReportData::Hashed { .. } => "hashed (seed, value)",
            ReportData::ItemSet(_) => "item-set",
        };
        return Err(format!(
            "report shape mismatch: connection negotiated {}, got a {got} report",
            shape.label()
        ));
    }
    let shape_param = match shape {
        ReportShape::Hashed { range } => range,
        ReportShape::ItemSet { k } => k,
        _ => 0,
    };
    report
        .as_report()
        .validate(report_len, shape_param)
        .map_err(|e| e.to_string())
}

/// Handles one frame of a negotiated connection, against the tenant the
/// connection bound to at handshake. Pure protocol: `Reports` validate
/// whole-frame-atomically and meet *this tenant's* queue's typed
/// backpressure (per-tenant capacity accounting — another tenant's
/// saturation is invisible here); queries capture this tenant's watermark
/// and become [`FrameAction::Settle`]; everything else draws a typed
/// reply.
pub(crate) fn apply_frame(shared: &Shared, tenant: usize, frame: Frame) -> FrameAction {
    let tenant_index = tenant;
    let tenant = shared.tenant(tenant_index);
    let shape = tenant.mechanism.report_shape();
    let report_len = tenant.mechanism.report_len();
    let reply = match frame {
        Frame::Reports(reports) => {
            // The whole frame validates before anything is queued: a
            // hostile frame mixing valid and invalid reports is rejected
            // atomically — no partial fold, nothing to un-count.
            // (Backpressure is the one partial outcome: `Busy{accepted}`
            // names the queued prefix, which the client re-sends from.)
            let invalid = reports.iter().enumerate().find_map(|(idx, report)| {
                validate_report(report, shape, report_len)
                    .err()
                    .map(|e| format!("report {idx}: {e}"))
            });
            if let Some(message) = invalid {
                reject(message)
            } else {
                let batch_len = reports.len();
                match tenant.queue.try_push_batch(reports) {
                    Ok(accepted) if accepted == batch_len => Frame::Ingested {
                        accepted: accepted as u64,
                    },
                    Ok(accepted) => Frame::Busy {
                        accepted: accepted as u64,
                    },
                    Err(PushRefusal::Full) => Frame::Busy { accepted: 0 },
                    Err(PushRefusal::Closed) => reject("server is shutting down"),
                }
            }
        }
        Frame::Query => {
            return FrameAction::Settle(PendingQuery {
                kind: QueryKind::Estimates,
                tenant: tenant_index,
                watermark: tenant.queue.watermark(),
            })
        }
        Frame::TopKQuery { k } => {
            return FrameAction::Settle(PendingQuery {
                kind: QueryKind::TopK(k),
                tenant: tenant_index,
                watermark: tenant.queue.watermark(),
            })
        }
        Frame::SnapshotQuery => {
            return FrameAction::Settle(PendingQuery {
                kind: QueryKind::Snapshot,
                tenant: tenant_index,
                watermark: tenant.queue.watermark(),
            })
        }
        Frame::Checkpoint => {
            if tenant.store.is_none() {
                reject("server has no checkpoint path configured")
            } else {
                return FrameAction::Settle(PendingQuery {
                    kind: QueryKind::Checkpoint,
                    tenant: tenant_index,
                    watermark: tenant.queue.watermark(),
                });
            }
        }
        Frame::Hello { .. } => reject("connection is already negotiated"),
        other => reject(format!("unexpected frame on the server side: {other:?}")),
    };
    FrameAction::Reply(reply)
}

/// Estimates over one tenant's current merged view (empty while no
/// users). Called only after the fold frontier reached the query's
/// watermark.
fn estimates_now(tenant: &Tenant) -> Result<(u64, Vec<f64>), String> {
    let snapshot = tenant.sink.snapshot();
    let users = snapshot.num_users();
    if users == 0 {
        return Ok((0, Vec::new()));
    }
    tenant
        .mechanism
        .frequency_oracle(users)
        .estimate_from(&snapshot)
        .map(|estimates| (users, estimates))
        .map_err(|e| e.to_string())
}

/// Builds the reply of a settled query from the watermark wait's verdict.
/// `None` means the server closed mid-wait — hang up without a reply,
/// exactly like the blocking engine's mid-query shutdown. A paused queue
/// draws the typed [`PAUSED_MSG`] refusal; a reached watermark computes
/// the reply over the now-complete merged view.
pub(crate) fn settle_reply(
    shared: &Shared,
    pending: &PendingQuery,
    outcome: WaitOutcome,
) -> Option<Frame> {
    match outcome {
        WaitOutcome::Closed => return None,
        WaitOutcome::Paused => return Some(reject(PAUSED_MSG)),
        WaitOutcome::Reached => {}
    }
    let tenant = shared.tenant(pending.tenant);
    let reply = match &pending.kind {
        QueryKind::Estimates => match estimates_now(tenant) {
            Ok((users, estimates)) => Frame::Estimates { users, estimates },
            Err(message) => reject(message),
        },
        QueryKind::TopK(k) => match estimates_now(tenant) {
            Ok((users, estimates)) => {
                let items = top_k_indices(&estimates, *k as usize)
                    .into_iter()
                    .map(|i| (i as u64, estimates[i]))
                    .collect();
                Frame::Candidates { users, items }
            }
            Err(message) => reject(message),
        },
        QueryKind::Checkpoint => match &tenant.store {
            Some(store) => {
                // Per-shard snapshots, no merge: the store decides whether
                // to persist them separately (sharded backend) or merged
                // (file and delta backends).
                let shards = tenant.sink.snapshot_shards();
                let users = shards.iter().map(|s| s.num_users()).sum();
                let run_line = tenant.run_line();
                let mut store = store
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                match store.save(&shards, &run_line) {
                    Ok(()) => Frame::CheckpointAck { users },
                    Err(e) => reject(format!("checkpoint write: {e}")),
                }
            }
            // Unreachable: `apply_frame` rejects Checkpoint before
            // settling when no path is configured.
            None => reject("server has no checkpoint path configured"),
        },
        QueryKind::Snapshot => {
            let snapshot = tenant.sink.snapshot();
            Frame::Snapshot {
                users: snapshot.num_users(),
                total: snapshot.counts().len() as u64,
                offset: 0,
                counts: snapshot.counts().to_vec(),
            }
        }
    };
    Some(reply)
}

/// Encodes a reply for the wire. Replies that fit one frame encode
/// directly (the universal case, byte-identical to protocol 2). Estimate
/// and snapshot vectors too large for one frame are split into contiguous
/// continuation chunks ([`Frame::EstimatesPart`] / [`Frame::Snapshot`])
/// and written as one buffer — both engines treat a reply as opaque
/// bytes, so chunking cannot behave differently between them. Any other
/// oversized reply (a `Candidates` list with millions of entries) still
/// draws the typed over-cap refusal instead of a dead connection.
///
/// Public because the coordinator frontend encodes its replies through
/// this too — coordinator and collector replies chunk identically.
pub fn encode_reply(frame: &Frame) -> Vec<u8> {
    if frame.fits_one_frame() {
        return frame.encode();
    }
    let parts = match frame {
        Frame::Estimates { users, estimates } => {
            crate::frame::estimates_reply_frames(*users, estimates)
        }
        Frame::Snapshot { users, counts, .. } => {
            crate::frame::snapshot_reply_frames(*users, counts)
        }
        _ => {
            let refusal = reject(format!(
                "reply exceeds the {} MiB frame cap (domain too large for one frame)",
                crate::frame::MAX_PAYLOAD_LEN >> 20
            ));
            return refusal.encode();
        }
    };
    let mut out = Vec::with_capacity(parts.iter().map(|f| 5 + f.encoded_payload_len()).sum());
    for part in &parts {
        out.extend_from_slice(&part.encode());
    }
    out
}
