//! # `idldp-server` — the networked ingestion service
//!
//! Everything below this crate treats a report stream as an in-process
//! iterator; this crate puts the reports on an actual socket, completing
//! the paper's client→server pipeline as a deployable service (the way
//! RAPPOR-style collectors are structured):
//!
//! * [`frame`] — the length-prefixed binary frame codec shared by both
//!   sides: the three compact report wire shapes
//!   ([`idldp_core::report::ReportData`] — packed bit vectors, categorical
//!   values, hashed `(seed, value)` pairs, item sets) plus the control
//!   frames (`Hello` mechanism-config handshake, `Query`, `TopKQuery`,
//!   `Checkpoint`) and their typed replies. Decoding is total: arbitrary
//!   bytes either parse or yield a typed [`FrameError`], never a panic.
//! * [`queue`] — the bounded [`IngestQueue`] between connection workers
//!   and fold workers: the backpressure point (full ⇒ typed `Busy` reply,
//!   never a silent drop) and the drain watermark that linearizes queries
//!   after ingestion.
//! * [`server`] — [`ReportServer`]: ingest workers folding into an
//!   [`idldp_stream::ShardedAccumulator`], snapshot/estimate/top-k queries
//!   served over the same socket, atomic checkpoint persistence, and two
//!   interchangeable *connection engines* ([`ConnectionEngine`]): a
//!   thread-per-connection blocking engine behind a rendezvous acceptor,
//!   and a readiness reactor multiplexing all connections onto a fixed
//!   set of event loops (the C10k path). The protocol logic is one shared
//!   module, so the engines cannot drift apart.
//! * [`client`] — [`ReportClient`]: connect + handshake, batched pushes
//!   with `Busy`-absorbing retry, and the query calls. Backs the `idldp
//!   push` CLI.
//!
//! The load-bearing property, proven by
//! `crates/sim/tests/server_loopback.rs` for all eight mechanisms:
//! estimates obtained over TCP (client → frames → server → snapshot →
//! oracle) are **bit-identical** to a batch `SimulationPipeline` run of
//! the same `(mechanism, inputs, seed)` — the transport adds latency, not
//! error — and a full ingest queue yields `Busy`, after which a retrying
//! client still converges to the exact same estimates.
//!
//! A server hosts one or more *tenants* — fully independent (mechanism,
//! ε) streams with per-tenant accumulators, ingest queues, and
//! checkpoints. The mechanism passed to [`ReportServer::start`] serves
//! the default tenant; [`server::TenantConfig`] adds more, and a v4
//! `Hello` selects one by name (v3 clients land on the default tenant).
//!
//! ```no_run
//! use idldp_core::budget::Epsilon;
//! use idldp_core::grr::GeneralizedRandomizedResponse;
//! use idldp_core::mechanism::{Input, Mechanism};
//! use idldp_server::{ReportClient, ReportServer, ServerConfig};
//! use rand::SeedableRng;
//! use std::sync::Arc;
//!
//! let mechanism: Arc<dyn Mechanism> =
//!     Arc::new(GeneralizedRandomizedResponse::new(Epsilon::new(1.0).unwrap(), 16).unwrap());
//! let config = ServerConfig::builder().build().unwrap();
//! let server = ReportServer::start(Arc::clone(&mechanism), config).unwrap();
//!
//! let (mut client, _resumed) =
//!     ReportClient::connect(server.local_addr(), mechanism.as_ref()).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let reports: Vec<_> = (0..1000)
//!     .map(|i| mechanism.perturb_data(Input::Item(i % 16), &mut rng).unwrap())
//!     .collect();
//! client.push_all(&reports).unwrap();
//! let (users, estimates) = client.query_estimates().unwrap();
//! assert_eq!(users, 1000);
//! assert_eq!(estimates.len(), 16);
//! server.shutdown();
//! ```

#![deny(missing_docs)]

pub mod client;
mod conn;
pub mod frame;
pub mod queue;
#[cfg(unix)]
mod reactor;
pub mod server;

pub use client::{ClientError, PushOutcome, Query, Reply, ReportClient, MAX_STALLED_RETRIES};
pub use conn::{check_hello, encode_reply, hello_tenant};
pub use frame::{
    encode_reports_frame, encoded_report_len, estimates_reply_frames, snapshot_reply_frames, Frame,
    FrameAssembler, FrameError, CHUNK_ELEMS, LEGACY_PROTOCOL_VERSION, MAX_BIT_REPORT_SLOTS,
    MAX_PAYLOAD_LEN, PROTOCOL_VERSION,
};
pub use queue::{IngestQueue, PushRefusal, WaitOutcome};
pub use server::{
    run_identity_line, ConnectionEngine, ReportServer, ServerConfig, ServerConfigBuilder,
    ServerError, TenantConfig,
};
