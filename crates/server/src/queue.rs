//! The bounded ingest queue between connection workers and fold workers.
//!
//! Connection workers parse [`crate::frame::Frame::Reports`] batches and
//! *try* to enqueue each report here; ingest workers pop reports and fold
//! them into the sharded accumulator. The queue is the backpressure point:
//! [`IngestQueue::try_push`] never blocks — when the queue is at capacity
//! it refuses, and the connection worker turns that refusal into a typed
//! `Busy` reply instead of silently dropping the report.
//!
//! The queue also carries the *linearization* counters that make queries
//! exact: `enqueued` counts accepted reports, `processed` counts folded
//! ones, and [`IngestQueue::wait_processed`] blocks until the fold side
//! catches up to a watermark — so a `Query` observes every report the
//! server accepted before it, and loopback estimates can be bit-identical
//! to a batch run.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a non-blocking push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushRefusal {
    /// The queue is at capacity — retry after ingest workers drain it.
    Full,
    /// The queue was closed (server shutting down).
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    enqueued: u64,
    processed: u64,
    closed: bool,
    paused: bool,
}

/// A bounded multi-producer multi-consumer queue with explicit
/// backpressure, drain watermarks, and a test/operations pause switch.
pub struct IngestQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    /// Signaled when an item arrives, the pause is lifted, or the queue
    /// closes (wakes poppers).
    not_empty: Condvar,
    /// Signaled when an item finishes processing or the queue closes
    /// (wakes watermark waiters).
    progress: Condvar,
}

impl<T> IngestQueue<T> {
    /// An open queue holding at most `capacity` in-flight items.
    ///
    /// # Panics
    /// Panics if `capacity == 0` (nothing could ever be accepted).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ingest queue capacity must be positive");
        Self {
            capacity,
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity.min(4096)),
                enqueued: 0,
                processed: 0,
                closed: false,
                paused: false,
            }),
            not_empty: Condvar::new(),
            progress: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        // The queue holds plain data; a panicking holder cannot leave it in
        // a torn state, so poisoning is recovered like parking_lot would.
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (waiting to be folded).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking push — the shedding half of the backpressure contract.
    ///
    /// # Errors
    /// [`PushRefusal::Full`] at capacity (the item is **not** queued;
    /// callers reply `Busy`), [`PushRefusal::Closed`] after [`Self::close`].
    pub fn try_push(&self, item: T) -> Result<(), PushRefusal> {
        let mut s = self.lock();
        if s.closed {
            return Err(PushRefusal::Closed);
        }
        if s.items.len() >= self.capacity {
            return Err(PushRefusal::Full);
        }
        s.items.push_back(item);
        s.enqueued += 1;
        drop(s);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available (and the queue is not paused),
    /// returning `None` once the queue is closed. Ingest workers exit on
    /// `None`.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.lock();
        loop {
            if s.closed {
                return None;
            }
            if !s.paused {
                if let Some(item) = s.items.pop_front() {
                    return Some(item);
                }
            }
            s = self
                .not_empty
                .wait(s)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Records that one popped item has been fully folded, waking
    /// watermark waiters. Every successful [`Self::pop`] must be paired
    /// with exactly one call.
    pub fn mark_processed(&self) {
        let mut s = self.lock();
        s.processed += 1;
        drop(s);
        self.progress.notify_all();
    }

    /// The current accept watermark: total items ever accepted. A query
    /// that waits for this watermark observes every report accepted before
    /// the query arrived.
    pub fn watermark(&self) -> u64 {
        self.lock().enqueued
    }

    /// Blocks until `watermark` items have been processed. Returns `false`
    /// if the queue closed first (shutdown) — callers should give up
    /// rather than serve a partial view.
    pub fn wait_processed(&self, watermark: u64) -> bool {
        let mut s = self.lock();
        while s.processed < watermark {
            if s.closed {
                return false;
            }
            s = self
                .progress
                .wait(s)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        true
    }

    /// Pauses (`true`) or resumes (`false`) the pop side. While paused,
    /// accepted items stay queued and the queue fills to capacity — the
    /// deterministic way to exercise the `Busy` path in tests, and an
    /// operational throttle for draining maintenance windows.
    pub fn set_paused(&self, paused: bool) {
        let mut s = self.lock();
        s.paused = paused;
        drop(s);
        self.not_empty.notify_all();
    }

    /// Closes the queue: pending and future pushes are refused, blocked
    /// poppers and watermark waiters wake immediately.
    pub fn close(&self) {
        let mut s = self.lock();
        s.closed = true;
        drop(s);
        self.not_empty.notify_all();
        self.progress.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bounded_push_pop() {
        let q = IngestQueue::new(2);
        assert_eq!(q.capacity(), 2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushRefusal::Full));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert!(q.is_empty());
    }

    #[test]
    fn close_wakes_poppers_and_refuses_pushes() {
        let q = Arc::new(IngestQueue::<u32>::new(4));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(popper.join().unwrap(), None);
        assert_eq!(q.try_push(1), Err(PushRefusal::Closed));
    }

    #[test]
    fn watermark_waits_for_processing() {
        let q = Arc::new(IngestQueue::new(16));
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let watermark = q.watermark();
        assert_eq!(watermark, 5);
        let q2 = Arc::clone(&q);
        let worker = std::thread::spawn(move || {
            while let Some(_item) = q2.pop() {
                q2.mark_processed();
                if q2.is_empty() {
                    break;
                }
            }
        });
        assert!(q.wait_processed(watermark));
        worker.join().unwrap();
        // An already-reached watermark returns immediately.
        assert!(q.wait_processed(watermark));
    }

    #[test]
    fn wait_processed_observes_close() {
        let q = Arc::new(IngestQueue::new(4));
        q.try_push(1).unwrap();
        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || q2.wait_processed(1));
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert!(!waiter.join().unwrap(), "close aborts the wait");
    }

    #[test]
    fn pause_fills_the_queue() {
        let q = Arc::new(IngestQueue::new(3));
        q.set_paused(true);
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(item) = q2.pop() {
                q2.mark_processed();
                got.push(item);
                if got.len() == 3 {
                    break;
                }
            }
            got
        });
        for i in 0..3 {
            q.try_push(i).unwrap();
        }
        // Paused: the popper cannot drain, so capacity is reached.
        assert_eq!(q.try_push(9), Err(PushRefusal::Full));
        q.set_paused(false);
        assert_eq!(popper.join().unwrap(), vec![0, 1, 2]);
        assert!(q.wait_processed(3));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = IngestQueue::<u8>::new(0);
    }
}
