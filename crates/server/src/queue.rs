//! The bounded ingest queue between connection workers and fold workers.
//!
//! Connection workers parse [`crate::frame::Frame::Reports`] batches and
//! *try* to enqueue each report here; ingest workers pop reports and fold
//! them into the sharded accumulator. The queue is the backpressure point:
//! [`IngestQueue::try_push`] never blocks — when the queue is at capacity
//! it refuses, and the connection worker turns that refusal into a typed
//! `Busy` reply instead of silently dropping the report.
//!
//! The queue also carries the *linearization* counters that make queries
//! exact: `enqueued` counts accepted reports, and each [`IngestQueue::pop`]
//! hands out the item's enqueue sequence number, which the worker passes
//! back to [`IngestQueue::mark_processed`] once the fold is done.
//! Completion is tracked as a **contiguous frontier**, not a global count:
//! with several fold workers, worker B finishing items 2..N must not let a
//! watermark wait return while worker A is still mid-fold on item 1 —
//! out-of-order completions are buffered until the prefix below them is
//! done. [`IngestQueue::wait_processed`] therefore blocks until *every*
//! item at or below a watermark has been folded — so a `Query` observes
//! every report the server accepted before it, and loopback estimates can
//! be bit-identical to a batch run.

use std::collections::{BTreeSet, VecDeque};
use std::sync::{Condvar, Mutex};

/// Why a non-blocking push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushRefusal {
    /// The queue is at capacity — retry after ingest workers drain it.
    Full,
    /// The queue was closed (server shutting down).
    Closed,
}

/// How a [`IngestQueue::wait_processed`] wait ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitOutcome {
    /// Every item at or below the watermark has been processed.
    Reached,
    /// The queue is paused and the watermark needs items still *queued*
    /// (not merely in flight), so the wait could only end when someone
    /// resumes — callers should refuse with a typed reply instead of
    /// parking a worker indefinitely.
    Paused,
    /// The queue closed first (shutdown) — callers should give up rather
    /// than serve a partial view.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    enqueued: u64,
    /// Sequence numbers handed out by `pop` (items leave the FIFO in
    /// enqueue order, so the i-th pop gets sequence i, 1-based).
    popped: u64,
    /// The contiguous completion frontier: every item with sequence
    /// `<= processed` has been folded.
    processed: u64,
    /// Completed sequences above the frontier (a worker finished item N
    /// while an earlier item is still in flight on another worker).
    done_above_frontier: BTreeSet<u64>,
    closed: bool,
    paused: bool,
}

/// A bounded multi-producer multi-consumer queue with explicit
/// backpressure, drain watermarks, and a test/operations pause switch.
pub struct IngestQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    /// Signaled when an item arrives, the pause is lifted, or the queue
    /// closes (wakes poppers).
    not_empty: Condvar,
    /// Signaled when an item finishes processing or the queue closes
    /// (wakes watermark waiters).
    progress: Condvar,
}

impl<T> IngestQueue<T> {
    /// An open queue holding at most `capacity` in-flight items.
    ///
    /// # Panics
    /// Panics if `capacity == 0` (nothing could ever be accepted).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ingest queue capacity must be positive");
        Self {
            capacity,
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity.min(4096)),
                enqueued: 0,
                popped: 0,
                processed: 0,
                done_above_frontier: BTreeSet::new(),
                closed: false,
                paused: false,
            }),
            not_empty: Condvar::new(),
            progress: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        // The queue holds plain data; a panicking holder cannot leave it in
        // a torn state, so poisoning is recovered like parking_lot would.
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (waiting to be folded).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking push — the shedding half of the backpressure contract.
    ///
    /// # Errors
    /// [`PushRefusal::Full`] at capacity (the item is **not** queued;
    /// callers reply `Busy`), [`PushRefusal::Closed`] after [`Self::close`].
    pub fn try_push(&self, item: T) -> Result<(), PushRefusal> {
        let mut s = self.lock();
        if s.closed {
            return Err(PushRefusal::Closed);
        }
        if s.items.len() >= self.capacity {
            return Err(PushRefusal::Full);
        }
        s.items.push_back(item);
        s.enqueued += 1;
        drop(s);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available (and the queue is not paused),
    /// returning `None` once the queue is closed. Ingest workers exit on
    /// `None`. The returned `u64` is the item's enqueue sequence number
    /// (1-based) — pass it back to [`Self::mark_processed`] when the item
    /// has been fully folded.
    pub fn pop(&self) -> Option<(u64, T)> {
        let mut s = self.lock();
        loop {
            if s.closed {
                return None;
            }
            if !s.paused {
                if let Some(item) = s.items.pop_front() {
                    s.popped += 1;
                    return Some((s.popped, item));
                }
            }
            s = self
                .not_empty
                .wait(s)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Records that the popped item with sequence `seq` has been fully
    /// folded. Every successful [`Self::pop`] must be paired with exactly
    /// one call carrying the sequence it returned.
    ///
    /// The completion frontier only advances across the *contiguous*
    /// prefix of finished sequences: an item that completes while an
    /// earlier one is still mid-fold on another worker is buffered, so
    /// watermark waiters never observe a view missing an accepted report.
    pub fn mark_processed(&self, seq: u64) {
        let mut s = self.lock();
        if seq == s.processed + 1 {
            s.processed = seq;
            loop {
                let next = s.processed + 1;
                if !s.done_above_frontier.remove(&next) {
                    break;
                }
                s.processed = next;
            }
            drop(s);
            self.progress.notify_all();
        } else {
            s.done_above_frontier.insert(seq);
        }
    }

    /// The current accept watermark: total items ever accepted. A query
    /// that waits for this watermark observes every report accepted before
    /// the query arrived.
    pub fn watermark(&self) -> u64 {
        self.lock().enqueued
    }

    /// Blocks until every item with sequence `<= watermark` has been
    /// processed (the contiguous frontier reached the watermark), the
    /// queue closes, or a pause makes the watermark unreachable — see
    /// [`WaitOutcome`]. While paused, items already popped can still
    /// finish (their folds are in flight), so the wait only reports
    /// [`WaitOutcome::Paused`] when the watermark lies beyond everything
    /// popped so far — otherwise a paused maintenance window would park
    /// every querying connection worker until resume, wedging the server.
    pub fn wait_processed(&self, watermark: u64) -> WaitOutcome {
        let mut s = self.lock();
        loop {
            if s.processed >= watermark {
                return WaitOutcome::Reached;
            }
            if s.closed {
                return WaitOutcome::Closed;
            }
            if s.paused && watermark > s.popped {
                return WaitOutcome::Paused;
            }
            s = self
                .progress
                .wait(s)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Pauses (`true`) or resumes (`false`) the pop side. While paused,
    /// accepted items stay queued and the queue fills to capacity — the
    /// deterministic way to exercise the `Busy` path in tests, and an
    /// operational throttle for draining maintenance windows.
    pub fn set_paused(&self, paused: bool) {
        let mut s = self.lock();
        s.paused = paused;
        drop(s);
        self.not_empty.notify_all();
        // Watermark waiters must observe a pause too: a wait that can no
        // longer be satisfied turns into a typed `Paused` outcome instead
        // of blocking until resume.
        self.progress.notify_all();
    }

    /// Closes the queue: pending and future pushes are refused, blocked
    /// poppers and watermark waiters wake immediately.
    pub fn close(&self) {
        let mut s = self.lock();
        s.closed = true;
        drop(s);
        self.not_empty.notify_all();
        self.progress.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bounded_push_pop() {
        let q = IngestQueue::new(2);
        assert_eq!(q.capacity(), 2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushRefusal::Full));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((1, 1)));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some((2, 2)));
        assert_eq!(q.pop(), Some((3, 3)));
        assert!(q.is_empty());
    }

    #[test]
    fn close_wakes_poppers_and_refuses_pushes() {
        let q = Arc::new(IngestQueue::<u32>::new(4));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(popper.join().unwrap(), None);
        assert_eq!(q.try_push(1), Err(PushRefusal::Closed));
    }

    #[test]
    fn watermark_waits_for_processing() {
        let q = Arc::new(IngestQueue::new(16));
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let watermark = q.watermark();
        assert_eq!(watermark, 5);
        let q2 = Arc::clone(&q);
        let worker = std::thread::spawn(move || {
            while let Some((seq, _item)) = q2.pop() {
                q2.mark_processed(seq);
                if q2.is_empty() {
                    break;
                }
            }
        });
        assert_eq!(q.wait_processed(watermark), WaitOutcome::Reached);
        worker.join().unwrap();
        // An already-reached watermark returns immediately.
        assert_eq!(q.wait_processed(watermark), WaitOutcome::Reached);
    }

    #[test]
    fn wait_processed_observes_close() {
        let q = Arc::new(IngestQueue::new(4));
        q.try_push(1).unwrap();
        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || q2.wait_processed(1));
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(
            waiter.join().unwrap(),
            WaitOutcome::Closed,
            "close aborts the wait"
        );
    }

    #[test]
    fn pause_fills_the_queue() {
        let q = Arc::new(IngestQueue::new(3));
        q.set_paused(true);
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Some((seq, item)) = q2.pop() {
                q2.mark_processed(seq);
                got.push(item);
                if got.len() == 3 {
                    break;
                }
            }
            got
        });
        for i in 0..3 {
            q.try_push(i).unwrap();
        }
        // Paused: the popper cannot drain, so capacity is reached.
        assert_eq!(q.try_push(9), Err(PushRefusal::Full));
        q.set_paused(false);
        assert_eq!(popper.join().unwrap(), vec![0, 1, 2]);
        assert_eq!(q.wait_processed(3), WaitOutcome::Reached);
    }

    /// The reviewer-found race: with two workers, worker B finishing later
    /// items must not satisfy a watermark wait while worker A is still
    /// mid-fold on an earlier one — the snapshot would miss an accepted
    /// (acked) report. The frontier only advances over the contiguous
    /// prefix of completed sequences.
    #[test]
    fn out_of_order_completion_holds_the_frontier() {
        use std::sync::atomic::{AtomicBool, Ordering};

        let q = Arc::new(IngestQueue::new(8));
        for i in 0..3 {
            q.try_push(i).unwrap();
        }
        let watermark = q.watermark();
        let (s1, _) = q.pop().unwrap();
        let (s2, _) = q.pop().unwrap();
        let (s3, _) = q.pop().unwrap();
        assert_eq!((s1, s2, s3), (1, 2, 3));
        // Items 2 and 3 finish while item 1 is still "mid-fold".
        q.mark_processed(s3);
        q.mark_processed(s2);
        let satisfied = Arc::new(AtomicBool::new(false));
        let waiter = {
            let q = Arc::clone(&q);
            let satisfied = Arc::clone(&satisfied);
            std::thread::spawn(move || {
                let ok = q.wait_processed(watermark);
                satisfied.store(true, Ordering::SeqCst);
                ok
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(
            !satisfied.load(Ordering::SeqCst),
            "watermark wait returned while item 1 was still in flight"
        );
        q.mark_processed(s1);
        assert_eq!(waiter.join().unwrap(), WaitOutcome::Reached);
    }

    /// While paused, a watermark needing still-queued items is a typed
    /// `Paused` outcome (a querying worker must not park until resume),
    /// but in-flight items — already popped — can still satisfy a lower
    /// watermark.
    #[test]
    fn paused_watermark_is_refused_not_blocked() {
        let q = Arc::new(IngestQueue::new(8));
        q.try_push(10).unwrap();
        q.try_push(11).unwrap();
        let (s1, _) = q.pop().unwrap(); // in flight
        q.set_paused(true);
        // Item 2 is still queued and cannot be popped while paused.
        assert_eq!(q.wait_processed(2), WaitOutcome::Paused);
        // The in-flight item can still complete and reach watermark 1.
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.wait_processed(1))
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.mark_processed(s1);
        assert_eq!(waiter.join().unwrap(), WaitOutcome::Reached);
        // Resume makes watermark 2 reachable again.
        q.set_paused(false);
        let (s2, _) = q.pop().unwrap();
        q.mark_processed(s2);
        assert_eq!(q.wait_processed(2), WaitOutcome::Reached);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = IngestQueue::<u8>::new(0);
    }
}
