//! The bounded ingest queue between connection workers and fold workers.
//!
//! Connection workers parse [`crate::frame::Frame::Reports`] batches and
//! *try* to enqueue each frame's reports here as one unit; ingest workers
//! pop whole batches and fold them into the sharded accumulator through
//! one batched fold per frame. The queue is the backpressure point:
//! [`IngestQueue::try_push_batch`] never blocks — when the queue is at
//! capacity it refuses (or accepts only a prefix), and the connection
//! worker turns that refusal into a typed `Busy` reply instead of silently
//! dropping a report. Capacity is counted in **reports**, not batches, so
//! the memory bound does not depend on how clients chunk their frames.
//!
//! The queue also carries the *linearization* counters that make queries
//! exact: `enqueued` counts accepted reports, and each [`IngestQueue::pop`]
//! hands out a [`BatchTicket`] naming the contiguous run of enqueue
//! sequence numbers the batch occupies, which the worker passes back to
//! [`IngestQueue::mark_processed`] once the whole batch is folded.
//! Completion is tracked as a **contiguous frontier**, not a global count:
//! with several fold workers, worker B finishing reports 2..N must not let
//! a watermark wait return while worker A is still mid-fold on report 1 —
//! out-of-order completions are buffered until the prefix below them is
//! done. [`IngestQueue::wait_processed`] therefore blocks until *every*
//! report at or below a watermark has been folded — so a `Query` observes
//! every report the server accepted before it, and loopback estimates can
//! be bit-identical to a batch run.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// Why a non-blocking push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushRefusal {
    /// The queue is at capacity — retry after ingest workers drain it.
    Full,
    /// The queue was closed (server shutting down).
    Closed,
}

/// How a [`IngestQueue::wait_processed`] wait ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitOutcome {
    /// Every item at or below the watermark has been processed.
    Reached,
    /// The queue is paused and the watermark needs items still *queued*
    /// (not merely in flight), so the wait could only end when someone
    /// resumes — callers should refuse with a typed reply instead of
    /// parking a worker indefinitely.
    Paused,
    /// The queue closed first (shutdown) — callers should give up rather
    /// than serve a partial view.
    Closed,
}

/// The contiguous run of enqueue sequence numbers (1-based, inclusive)
/// occupied by one popped batch. Returned by [`IngestQueue::pop`]; passed
/// back to [`IngestQueue::mark_processed`] when the batch has been fully
/// folded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchTicket {
    first: u64,
    last: u64,
}

impl BatchTicket {
    /// First sequence number of the batch (1-based).
    pub fn first(&self) -> u64 {
        self.first
    }

    /// Last sequence number of the batch (inclusive).
    pub fn last(&self) -> u64 {
        self.last
    }

    /// Number of reports the ticket covers.
    pub fn len(&self) -> u64 {
        self.last - self.first + 1
    }

    /// Always `false`: only non-empty batches are queued, so a ticket
    /// covers at least one report by construction.
    pub fn is_empty(&self) -> bool {
        false
    }
}

struct State<T> {
    /// Accepted batches in FIFO order, each tagged with the sequence
    /// number of its first item (batches occupy contiguous sequence runs
    /// by construction).
    batches: VecDeque<(u64, Vec<T>)>,
    /// Total items across `batches` (the capacity denominator).
    queued_items: usize,
    /// Items ever accepted.
    enqueued: u64,
    /// Items ever handed out by `pop` (batches leave the FIFO in enqueue
    /// order, so pops cover the sequence space contiguously).
    popped: u64,
    /// The contiguous completion frontier: every item with sequence
    /// `<= processed` has been folded.
    processed: u64,
    /// Completed sequence runs above the frontier, keyed by first
    /// sequence (a worker finished a later batch while an earlier one is
    /// still in flight on another worker).
    done_above_frontier: BTreeMap<u64, u64>,
    closed: bool,
    paused: bool,
}

/// A bounded multi-producer multi-consumer batch queue with explicit
/// backpressure, drain watermarks, and a test/operations pause switch.
pub struct IngestQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    /// Signaled when a batch arrives, the pause is lifted, or the queue
    /// closes (wakes poppers).
    not_empty: Condvar,
    /// Signaled when a batch finishes processing or the queue closes
    /// (wakes watermark waiters).
    progress: Condvar,
}

impl<T> IngestQueue<T> {
    /// An open queue holding at most `capacity` in-flight items (reports,
    /// summed across queued batches).
    ///
    /// # Panics
    /// Panics if `capacity == 0` (nothing could ever be accepted).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ingest queue capacity must be positive");
        Self {
            capacity,
            state: Mutex::new(State {
                batches: VecDeque::new(),
                queued_items: 0,
                enqueued: 0,
                popped: 0,
                processed: 0,
                done_above_frontier: BTreeMap::new(),
                closed: false,
                paused: false,
            }),
            not_empty: Condvar::new(),
            progress: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        // The queue holds plain data; a panicking holder cannot leave it in
        // a torn state, so poisoning is recovered like parking_lot would.
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The configured capacity (in items).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (waiting to be folded), across all batches.
    pub fn len(&self) -> usize {
        self.lock().queued_items
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking batch push — the shedding half of the backpressure
    /// contract. Accepts the longest prefix of `batch` that fits under
    /// capacity and returns its length; the caller replies `Busy` for a
    /// partial accept and resends the tail. The accepted prefix is queued
    /// as **one batch** (one pop, one batched fold downstream).
    ///
    /// An empty batch is accepted trivially (`Ok(0)`) without queueing
    /// anything.
    ///
    /// # Errors
    /// [`PushRefusal::Full`] when the queue cannot take even one item
    /// (nothing is queued), [`PushRefusal::Closed`] after [`Self::close`].
    pub fn try_push_batch(&self, mut batch: Vec<T>) -> Result<usize, PushRefusal> {
        let mut s = self.lock();
        if s.closed {
            return Err(PushRefusal::Closed);
        }
        if batch.is_empty() {
            return Ok(0);
        }
        let free = self.capacity - s.queued_items;
        if free == 0 {
            return Err(PushRefusal::Full);
        }
        let accepted = batch.len().min(free);
        batch.truncate(accepted);
        let first = s.enqueued + 1;
        s.batches.push_back((first, batch));
        s.queued_items += accepted;
        s.enqueued += accepted as u64;
        drop(s);
        self.not_empty.notify_one();
        Ok(accepted)
    }

    /// Non-blocking single-item push: a one-item [`Self::try_push_batch`].
    ///
    /// # Errors
    /// [`PushRefusal::Full`] at capacity (the item is **not** queued;
    /// callers reply `Busy`), [`PushRefusal::Closed`] after [`Self::close`].
    pub fn try_push(&self, item: T) -> Result<(), PushRefusal> {
        self.try_push_batch(vec![item]).map(|accepted| {
            debug_assert_eq!(accepted, 1, "a one-item push is all-or-nothing");
        })
    }

    /// Blocks until a batch is available (and the queue is not paused),
    /// returning `None` once the queue is closed. Ingest workers exit on
    /// `None`. The returned [`BatchTicket`] names the batch's contiguous
    /// enqueue sequence run — pass it back to [`Self::mark_processed`]
    /// when the whole batch has been folded.
    pub fn pop(&self) -> Option<(BatchTicket, Vec<T>)> {
        let mut s = self.lock();
        loop {
            if s.closed {
                return None;
            }
            if !s.paused {
                if let Some((first, batch)) = s.batches.pop_front() {
                    let last = first + batch.len() as u64 - 1;
                    s.queued_items -= batch.len();
                    s.popped = last;
                    return Some((BatchTicket { first, last }, batch));
                }
            }
            s = self
                .not_empty
                .wait(s)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Records that the popped batch covered by `ticket` has been fully
    /// folded. Every successful [`Self::pop`] must be paired with exactly
    /// one call carrying the ticket it returned.
    ///
    /// The completion frontier only advances across the *contiguous*
    /// prefix of finished sequences: a batch that completes while an
    /// earlier one is still mid-fold on another worker is buffered, so
    /// watermark waiters never observe a view missing an accepted report.
    pub fn mark_processed(&self, ticket: BatchTicket) {
        let mut s = self.lock();
        if ticket.first == s.processed + 1 {
            s.processed = ticket.last;
            loop {
                let next = s.processed + 1;
                let Some(last) = s.done_above_frontier.remove(&next) else {
                    break;
                };
                s.processed = last;
            }
            drop(s);
            self.progress.notify_all();
        } else {
            s.done_above_frontier.insert(ticket.first, ticket.last);
        }
    }

    /// The current accept watermark: total items ever accepted. A query
    /// that waits for this watermark observes every report accepted before
    /// the query arrived.
    pub fn watermark(&self) -> u64 {
        self.lock().enqueued
    }

    /// Blocks until every item with sequence `<= watermark` has been
    /// processed (the contiguous frontier reached the watermark), the
    /// queue closes, or a pause makes the watermark unreachable — see
    /// [`WaitOutcome`]. While paused, batches already popped can still
    /// finish (their folds are in flight), so the wait only reports
    /// [`WaitOutcome::Paused`] when the watermark lies beyond everything
    /// popped so far — otherwise a paused maintenance window would park
    /// every querying connection worker until resume, wedging the server.
    pub fn wait_processed(&self, watermark: u64) -> WaitOutcome {
        let mut s = self.lock();
        loop {
            if s.processed >= watermark {
                return WaitOutcome::Reached;
            }
            if s.closed {
                return WaitOutcome::Closed;
            }
            if s.paused && watermark > s.popped {
                return WaitOutcome::Paused;
            }
            s = self
                .progress
                .wait(s)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Non-blocking twin of [`Self::wait_processed`]: the wait's current
    /// verdict without parking the calling thread. `Some(outcome)` is
    /// exactly what `wait_processed` would return right now; `None` means
    /// the wait would still block (the watermark is reachable but not yet
    /// reached) — poll again after more progress. This is what the
    /// readiness engine uses: an event loop owning hundreds of
    /// connections cannot block one query's watermark wait without
    /// stalling all of them, so settling queries are re-polled on each
    /// loop tick instead.
    pub fn poll_processed(&self, watermark: u64) -> Option<WaitOutcome> {
        let s = self.lock();
        if s.processed >= watermark {
            Some(WaitOutcome::Reached)
        } else if s.closed {
            Some(WaitOutcome::Closed)
        } else if s.paused && watermark > s.popped {
            Some(WaitOutcome::Paused)
        } else {
            None
        }
    }

    /// Pauses (`true`) or resumes (`false`) the pop side. While paused,
    /// accepted batches stay queued and the queue fills to capacity — the
    /// deterministic way to exercise the `Busy` path in tests, and an
    /// operational throttle for draining maintenance windows.
    pub fn set_paused(&self, paused: bool) {
        let mut s = self.lock();
        s.paused = paused;
        drop(s);
        self.not_empty.notify_all();
        // Watermark waiters must observe a pause too: a wait that can no
        // longer be satisfied turns into a typed `Paused` outcome instead
        // of blocking until resume.
        self.progress.notify_all();
    }

    /// Closes the queue: pending and future pushes are refused, blocked
    /// poppers and watermark waiters wake immediately.
    pub fn close(&self) {
        let mut s = self.lock();
        s.closed = true;
        drop(s);
        self.not_empty.notify_all();
        self.progress.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ticket(first: u64, last: u64) -> BatchTicket {
        BatchTicket { first, last }
    }

    #[test]
    fn bounded_push_pop() {
        let q = IngestQueue::new(2);
        assert_eq!(q.capacity(), 2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushRefusal::Full));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((ticket(1, 1), vec![1])));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some((ticket(2, 2), vec![2])));
        assert_eq!(q.pop(), Some((ticket(3, 3), vec![3])));
        assert!(q.is_empty());
    }

    #[test]
    fn batches_pop_whole_with_contiguous_tickets() {
        let q = IngestQueue::new(10);
        assert_eq!(q.try_push_batch(vec![1, 2, 3]), Ok(3));
        assert_eq!(
            q.try_push_batch(Vec::<i32>::new()),
            Ok(0),
            "empty is a no-op"
        );
        assert_eq!(q.try_push_batch(vec![4, 5]), Ok(2));
        assert_eq!(q.len(), 5);
        assert_eq!(q.watermark(), 5);
        let (t1, b1) = q.pop().unwrap();
        assert_eq!((t1, b1), (ticket(1, 3), vec![1, 2, 3]));
        assert_eq!(t1.len(), 3);
        let (t2, b2) = q.pop().unwrap();
        assert_eq!((t2, b2), (ticket(4, 5), vec![4, 5]));
        q.mark_processed(t1);
        q.mark_processed(t2);
        assert_eq!(q.wait_processed(5), WaitOutcome::Reached);
    }

    #[test]
    fn capacity_counts_items_and_accepts_prefixes() {
        // Capacity is in reports, not batches: a 5-slot queue takes a
        // 3-batch, then only 2 of the next 4 — and refuses outright once
        // full, so the `Busy{accepted}` strict-prefix contract holds.
        let q = IngestQueue::new(5);
        assert_eq!(q.try_push_batch(vec![0, 1, 2]), Ok(3));
        assert_eq!(q.try_push_batch(vec![3, 4, 5, 6]), Ok(2));
        assert_eq!(q.try_push_batch(vec![7]), Err(PushRefusal::Full));
        assert_eq!(q.len(), 5);
        // The partial accept queued exactly the prefix.
        let (t1, _) = q.pop().unwrap();
        let (t2, b2) = q.pop().unwrap();
        assert_eq!(b2, vec![3, 4]);
        assert_eq!(t2, ticket(4, 5));
        q.mark_processed(t1);
        q.mark_processed(t2);
        assert_eq!(q.wait_processed(q.watermark()), WaitOutcome::Reached);
    }

    #[test]
    fn close_wakes_poppers_and_refuses_pushes() {
        let q = Arc::new(IngestQueue::<u32>::new(4));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(popper.join().unwrap(), None);
        assert_eq!(q.try_push(1), Err(PushRefusal::Closed));
        assert_eq!(q.try_push_batch(vec![1, 2]), Err(PushRefusal::Closed));
    }

    #[test]
    fn watermark_waits_for_processing() {
        let q = Arc::new(IngestQueue::new(16));
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let watermark = q.watermark();
        assert_eq!(watermark, 5);
        let q2 = Arc::clone(&q);
        let worker = std::thread::spawn(move || {
            while let Some((ticket, _batch)) = q2.pop() {
                q2.mark_processed(ticket);
                if q2.is_empty() {
                    break;
                }
            }
        });
        assert_eq!(q.wait_processed(watermark), WaitOutcome::Reached);
        worker.join().unwrap();
        // An already-reached watermark returns immediately.
        assert_eq!(q.wait_processed(watermark), WaitOutcome::Reached);
    }

    #[test]
    fn wait_processed_observes_close() {
        let q = Arc::new(IngestQueue::new(4));
        q.try_push(1).unwrap();
        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || q2.wait_processed(1));
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(
            waiter.join().unwrap(),
            WaitOutcome::Closed,
            "close aborts the wait"
        );
    }

    #[test]
    fn pause_fills_the_queue() {
        let q = Arc::new(IngestQueue::new(3));
        q.set_paused(true);
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Some((ticket, batch)) = q2.pop() {
                q2.mark_processed(ticket);
                got.extend(batch);
                if got.len() == 3 {
                    break;
                }
            }
            got
        });
        for i in 0..3 {
            q.try_push(i).unwrap();
        }
        // Paused: the popper cannot drain, so capacity is reached.
        assert_eq!(q.try_push(9), Err(PushRefusal::Full));
        q.set_paused(false);
        assert_eq!(popper.join().unwrap(), vec![0, 1, 2]);
        assert_eq!(q.wait_processed(3), WaitOutcome::Reached);
    }

    /// The reviewer-found race: with two workers, worker B finishing later
    /// batches must not satisfy a watermark wait while worker A is still
    /// mid-fold on an earlier one — the snapshot would miss an accepted
    /// (acked) report. The frontier only advances over the contiguous
    /// prefix of completed sequences.
    #[test]
    fn out_of_order_completion_holds_the_frontier() {
        use std::sync::atomic::{AtomicBool, Ordering};

        let q = Arc::new(IngestQueue::new(8));
        q.try_push_batch(vec![0]).unwrap();
        q.try_push_batch(vec![1, 2]).unwrap();
        q.try_push_batch(vec![3]).unwrap();
        let watermark = q.watermark();
        let (t1, _) = q.pop().unwrap();
        let (t2, _) = q.pop().unwrap();
        let (t3, _) = q.pop().unwrap();
        assert_eq!((t1, t2, t3), (ticket(1, 1), ticket(2, 3), ticket(4, 4)));
        // Batches 2 and 3 finish while batch 1 is still "mid-fold".
        q.mark_processed(t3);
        q.mark_processed(t2);
        let satisfied = Arc::new(AtomicBool::new(false));
        let waiter = {
            let q = Arc::clone(&q);
            let satisfied = Arc::clone(&satisfied);
            std::thread::spawn(move || {
                let ok = q.wait_processed(watermark);
                satisfied.store(true, Ordering::SeqCst);
                ok
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(
            !satisfied.load(Ordering::SeqCst),
            "watermark wait returned while batch 1 was still in flight"
        );
        q.mark_processed(t1);
        assert_eq!(waiter.join().unwrap(), WaitOutcome::Reached);
    }

    /// While paused, a watermark needing still-queued items is a typed
    /// `Paused` outcome (a querying worker must not park until resume),
    /// but in-flight batches — already popped — can still satisfy a lower
    /// watermark.
    #[test]
    fn paused_watermark_is_refused_not_blocked() {
        let q = Arc::new(IngestQueue::new(8));
        q.try_push(10).unwrap();
        q.try_push(11).unwrap();
        let (t1, _) = q.pop().unwrap(); // in flight
        q.set_paused(true);
        // Item 2 is still queued and cannot be popped while paused.
        assert_eq!(q.wait_processed(2), WaitOutcome::Paused);
        // The in-flight item can still complete and reach watermark 1.
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.wait_processed(1))
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.mark_processed(t1);
        assert_eq!(waiter.join().unwrap(), WaitOutcome::Reached);
        // Resume makes watermark 2 reachable again.
        q.set_paused(false);
        let (t2, _) = q.pop().unwrap();
        q.mark_processed(t2);
        assert_eq!(q.wait_processed(2), WaitOutcome::Reached);
    }

    /// `poll_processed` mirrors `wait_processed` verdict-for-verdict, with
    /// `None` standing in for "would block".
    #[test]
    fn poll_processed_matches_wait_semantics() {
        let q = IngestQueue::new(8);
        assert_eq!(q.poll_processed(0), Some(WaitOutcome::Reached));
        q.try_push(7).unwrap();
        assert_eq!(q.poll_processed(1), None, "accepted but not yet folded");
        let (t, _) = q.pop().unwrap();
        // Paused with the watermark already in flight: still just pending.
        q.set_paused(true);
        assert_eq!(q.poll_processed(1), None);
        // Paused with a watermark beyond everything popped: typed refusal.
        q.try_push(8).unwrap();
        assert_eq!(q.poll_processed(2), Some(WaitOutcome::Paused));
        q.set_paused(false);
        q.mark_processed(t);
        assert_eq!(q.poll_processed(1), Some(WaitOutcome::Reached));
        q.close();
        assert_eq!(q.poll_processed(2), Some(WaitOutcome::Closed));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = IngestQueue::<u8>::new(0);
    }
}
