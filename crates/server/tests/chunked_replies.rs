//! Regression test for the 16 MiB estimate-reply cap.
//!
//! Before chunked continuation frames, a domain whose estimate vector
//! exceeded [`MAX_PAYLOAD_LEN`] drew a typed refusal from the server —
//! queries against multi-million-item domains simply failed. Now the
//! reply arrives as contiguous `EstimatesPart` chunks (and snapshots as
//! contiguous `Snapshot` chunks) that the client reassembles, with each
//! chunk individually under the cap. This test runs a GRR domain *just*
//! over the cap (the smallest m whose `Estimates` payload of `12 + 8m`
//! bytes exceeds 16 MiB) end to end through a real server and both
//! connection engines, and verifies the reassembled vectors are
//! bit-identical to a local computation over the same counts.

use idldp_core::budget::Epsilon;
use idldp_core::grr::GeneralizedRandomizedResponse;
use idldp_core::mechanism::Mechanism;
use idldp_core::report::ReportData;
use idldp_core::snapshot::AccumulatorSnapshot;
use idldp_server::{ConnectionEngine, ReportClient, ReportServer, ServerConfig, MAX_PAYLOAD_LEN};
use std::sync::Arc;

fn engines() -> Vec<ConnectionEngine> {
    let mut engines = vec![ConnectionEngine::Blocking];
    if cfg!(unix) {
        engines.push(ConnectionEngine::Reactor);
    }
    engines
}

#[test]
fn over_cap_estimate_and_snapshot_replies_reassemble_bit_identically() {
    // Smallest m with 12 + 8m > MAX_PAYLOAD_LEN.
    let m = (MAX_PAYLOAD_LEN - 12) / 8 + 1;
    assert!(
        12 + 8 * m > MAX_PAYLOAD_LEN,
        "domain must overflow one frame"
    );

    let mechanism: Arc<dyn Mechanism> =
        Arc::new(GeneralizedRandomizedResponse::new(Epsilon::new(1.0).unwrap(), m).unwrap());

    // A handful of cheap Value reports: the *reply* is what's huge here,
    // not the ingest. Known values make the expected counts exact.
    let values = [0usize, 1, 1, m / 2, m - 1, m - 1, m - 1];
    let reports: Vec<ReportData> = values.iter().map(|&v| ReportData::Value(v)).collect();
    let mut expected_counts = vec![0u64; m];
    for &v in &values {
        expected_counts[v] += 1;
    }
    let users = values.len() as u64;
    let expected_snapshot = AccumulatorSnapshot::new(expected_counts.clone(), users).unwrap();
    let expected_estimates = mechanism
        .frequency_oracle(users)
        .estimate_from(&expected_snapshot)
        .unwrap();

    for engine in engines() {
        let server = ReportServer::start(
            Arc::clone(&mechanism),
            ServerConfig::builder().engine(engine).build().unwrap(),
        )
        .unwrap();
        let (mut client, resumed) =
            ReportClient::connect(server.local_addr(), mechanism.as_ref()).unwrap();
        assert_eq!(resumed, 0);
        client.push_all(&reports).unwrap();

        // Estimates: over the cap, so the reply is chunked and reassembled
        // transparently — and still bit-identical to the local oracle.
        let (got_users, got_estimates) = client.query_estimates().unwrap();
        assert_eq!(got_users, users, "{engine}");
        assert_eq!(got_estimates.len(), m, "{engine}");
        for (i, (a, b)) in got_estimates.iter().zip(&expected_estimates).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{engine}: estimate {i}");
        }

        // Raw counts: also chunked (m > CHUNK_ELEMS), exact integers.
        let (snap_users, counts) = client.query_snapshot().unwrap();
        assert_eq!(snap_users, users, "{engine}");
        assert_eq!(counts, expected_counts, "{engine}");

        // Top-k over the same huge domain stays a single small frame.
        let (_, top) = client.query_top_k(2).unwrap();
        let top_items: Vec<u64> = top.iter().map(|&(item, _)| item).collect();
        assert_eq!(top_items, vec![(m - 1) as u64, 1], "{engine}");

        drop(client);
        server.shutdown();
    }
}
