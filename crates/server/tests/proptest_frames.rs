//! Property tests for the frame codec.
//!
//! Two laws:
//!
//! 1. **Round-trip identity** — for arbitrary [`ReportData`] of every wire
//!    shape and arbitrary control frames, `decode(encode(f)) == f`, both
//!    through the slice decoder and the stream reader.
//! 2. **Total decoding** — truncations, length-prefix corruption, and
//!    arbitrary byte mutations of valid frames either decode to *some*
//!    frame or return a typed [`FrameError`]; the decoder never panics and
//!    never accepts an oversized length prefix.
//! 3. **Fragmentation invariance** — the incremental [`FrameAssembler`]
//!    (the reactor engine's decode path) fed any byte-fragmentation
//!    schedule of a frame sequence yields exactly the frames of a
//!    whole-frame decode, buffers no more than one frame at a time, and
//!    classifies an EOF cut exactly like the blocking stream reader.

use idldp_core::report::ReportData;
use idldp_server::{Frame, FrameAssembler, FrameError, MAX_PAYLOAD_LEN, PROTOCOL_VERSION};
use proptest::prelude::*;

/// Arbitrary report of any of the four wire shapes.
fn arb_report() -> impl Strategy<Value = ReportData> {
    (
        0usize..4,
        prop::collection::vec(0u8..=1, 0..50),
        0usize..100_000,
        (any::<u64>(), 0usize..1_000),
        prop::collection::vec(0usize..500, 0..12),
    )
        .prop_map(
            |(kind, bits, value, (seed, hashed_value), mut items)| match kind {
                0 => ReportData::Bits(bits),
                1 => ReportData::Value(value),
                2 => ReportData::Hashed {
                    seed,
                    value: hashed_value,
                },
                _ => {
                    // Item sets need distinct members to be valid reports; the
                    // codec itself does not care, but keep both flavors in play.
                    items.sort_unstable();
                    items.dedup();
                    ReportData::ItemSet(items)
                }
            },
        )
}

/// Arbitrary frame of every protocol message kind.
fn arb_frame() -> impl Strategy<Value = Frame> {
    (
        0usize..15,
        prop::collection::vec(arb_report(), 0..8),
        any::<u64>(),
        prop::collection::vec((0.0f64..1.0, any::<bool>()), 0..20),
        prop::collection::vec(0u8..=255, 0..24),
    )
        .prop_map(|(kind, reports, number, floats, text_bytes)| {
            // Signed/subnormal/zero estimates all travel as raw bits.
            let estimates: Vec<f64> = floats
                .iter()
                .map(|&(f, neg)| if neg { -f * 1e-300 } else { f })
                .collect();
            let message: String = text_bytes.iter().map(|&b| char::from(b)).collect();
            match kind {
                0 => Frame::Hello {
                    version: PROTOCOL_VERSION,
                    // Any string must survive the codec round trip, not
                    // just validated tenant ids: decode is total.
                    tenant: message.chars().rev().collect(),
                    kind: message,
                    shape: reports
                        .first()
                        .map(|r| match r {
                            ReportData::Bits(_) => idldp_core::report::ReportShape::Bits,
                            ReportData::Value(_) => idldp_core::report::ReportShape::Value,
                            ReportData::Hashed { value, .. } => {
                                idldp_core::report::ReportShape::Hashed { range: value + 1 }
                            }
                            ReportData::ItemSet(items) => {
                                idldp_core::report::ReportShape::ItemSet { k: items.len() }
                            }
                        })
                        .unwrap_or(idldp_core::report::ReportShape::Bits),
                    report_len: number,
                    ldp_eps_bits: number.rotate_left(17),
                },
                1 => Frame::HelloAck {
                    users: number,
                    run_line: message,
                },
                2 => Frame::Reports(reports),
                3 => Frame::Ingested { accepted: number },
                4 => Frame::Busy { accepted: number },
                5 => Frame::Query,
                6 => Frame::Estimates {
                    users: number,
                    estimates,
                },
                7 => Frame::TopKQuery { k: number },
                8 => Frame::Candidates {
                    users: number,
                    items: estimates
                        .iter()
                        .enumerate()
                        .map(|(i, &e)| (i as u64, e))
                        .collect(),
                },
                9 => Frame::Checkpoint,
                10 => Frame::CheckpointAck { users: number },
                11 => Frame::SnapshotQuery,
                12 => {
                    // The chunk header must be self-consistent
                    // (offset + len ≤ total) or the decoder rejects it.
                    let counts: Vec<u64> = estimates.iter().map(|e| e.to_bits()).collect();
                    let offset = number % 4096;
                    Frame::Snapshot {
                        users: number,
                        total: offset + counts.len() as u64 + number % 3,
                        offset,
                        counts,
                    }
                }
                13 => {
                    let offset = number % 4096;
                    Frame::EstimatesPart {
                        users: number,
                        total: offset + estimates.len() as u64 + number % 5,
                        offset,
                        estimates,
                    }
                }
                _ => Frame::Reject {
                    accepted: number,
                    message,
                },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// encode → decode is the identity for every frame kind, through both
    /// decoder entry points.
    #[test]
    fn frame_round_trip(frame in arb_frame()) {
        let bytes = frame.encode();
        prop_assert_eq!(Frame::decode(&bytes).unwrap(), frame.clone());
        let mut cursor = std::io::Cursor::new(&bytes);
        prop_assert_eq!(Frame::read_from(&mut cursor).unwrap(), Some(frame));
        prop_assert_eq!(Frame::read_from(&mut cursor).unwrap(), None);
    }

    /// Every strict prefix of a valid frame is rejected with a typed
    /// error — never a panic, never a bogus success.
    #[test]
    fn truncation_never_panics(frame in arb_frame(), cut in any::<prop::sample::Index>()) {
        let bytes = frame.encode();
        let cut = cut.index(bytes.len().max(1)).min(bytes.len().saturating_sub(1));
        match Frame::decode(&bytes[..cut]) {
            Err(FrameError::Truncated { .. }) | Err(FrameError::Malformed(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {other:?}"),
            Ok(decoded) => prop_assert!(false, "prefix decoded to {decoded:?}"),
        }
        // The stream reader agrees (EOF inside a frame is Truncated; a cut
        // at 0 is a clean EOF).
        let mut cursor = std::io::Cursor::new(&bytes[..cut]);
        match Frame::read_from(&mut cursor) {
            Ok(None) => prop_assert_eq!(cut, 0, "clean EOF only at the frame boundary"),
            Ok(Some(decoded)) => prop_assert!(false, "prefix read as {decoded:?}"),
            Err(FrameError::Truncated { .. }) | Err(FrameError::Malformed(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {other:?}"),
        }
    }

    /// Arbitrary single-byte mutations of a valid frame either decode to
    /// some frame or fail with a typed error — decoding is total.
    #[test]
    fn mutation_never_panics(
        frame in arb_frame(),
        at in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let mut bytes = frame.encode();
        let at = at.index(bytes.len());
        bytes[at] ^= xor;
        match Frame::decode(&bytes) {
            Ok(_) => {}
            Err(
                FrameError::Truncated { .. }
                | FrameError::Oversized { .. }
                | FrameError::UnknownTag(_)
                | FrameError::Malformed(_),
            ) => {}
            Err(FrameError::Io(detail)) => {
                prop_assert!(false, "slice decode cannot do i/o: {detail}")
            }
        }
    }

    /// Oversized length prefixes are rejected before any allocation, for
    /// every tag byte.
    #[test]
    fn oversized_prefix_is_always_rejected(tag in 0u8..=255, extra in 1u32..1_000_000) {
        let len = MAX_PAYLOAD_LEN as u32 + extra;
        let mut bytes = vec![tag];
        bytes.extend_from_slice(&len.to_le_bytes());
        prop_assert_eq!(
            Frame::decode(&bytes),
            Err(FrameError::Oversized {
                len: len as usize,
                max: MAX_PAYLOAD_LEN,
            })
        );
    }

    /// The incremental assembler is fragmentation-invariant: any chunking
    /// of an interleaved frame sequence — byte-at-a-time drips, chunks
    /// straddling frame boundaries, many frames in one chunk — reassembles
    /// to exactly the frames a whole-frame decode yields, in order, and
    /// ends at a clean frame boundary. Along the way the assembler never
    /// buffers more than the one in-flight frame (the incremental-read
    /// bound the reactor's slow-loris defence rests on).
    #[test]
    fn assembler_reassembles_any_fragmentation_schedule(
        frames in prop::collection::vec(arb_frame(), 1..6),
        splits in prop::collection::vec(any::<prop::sample::Index>(), 0..32),
    ) {
        let mut bytes = Vec::new();
        let mut max_wire = 0usize;
        for frame in &frames {
            let encoded = frame.encode();
            max_wire = max_wire.max(encoded.len());
            bytes.extend_from_slice(&encoded);
        }
        let mut cuts: Vec<usize> = splits.iter().map(|i| i.index(bytes.len() + 1)).collect();
        cuts.push(bytes.len());
        cuts.sort_unstable();
        cuts.dedup();

        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        let mut prev = 0usize;
        for cut in cuts {
            asm.feed(&bytes[prev..cut]).unwrap();
            prop_assert!(
                asm.buffered_bytes() <= max_wire,
                "assembler buffers {} bytes, largest frame is {max_wire}",
                asm.buffered_bytes()
            );
            while let Some(frame) = asm.next_frame() {
                got.push(frame);
            }
            prev = cut;
        }
        prop_assert_eq!(got, frames);
        prop_assert!(!asm.mid_frame(), "stream must end at a frame boundary");
        prop_assert_eq!(asm.eof_truncation(), None);
    }

    /// An EOF cut anywhere inside a frame sequence is classified by the
    /// assembler exactly like the blocking stream reader classifies the
    /// same prefix: complete leading frames decode, and the cut is either
    /// a clean boundary (no error) or a typed `Truncated` — never a panic,
    /// never a phantom frame.
    #[test]
    fn assembler_eof_classification_matches_stream_reader(
        frames in prop::collection::vec(arb_frame(), 1..5),
        cut in any::<prop::sample::Index>(),
        drip in 1usize..7,
    ) {
        let mut bytes = Vec::new();
        for frame in &frames {
            bytes.extend_from_slice(&frame.encode());
        }
        let cut = cut.index(bytes.len() + 1);
        let prefix = &bytes[..cut];

        // Reference: the blocking reader over the same prefix.
        let mut want = Vec::new();
        let mut cursor = std::io::Cursor::new(prefix);
        let want_err = loop {
            match Frame::read_from(&mut cursor) {
                Ok(Some(frame)) => want.push(frame),
                Ok(None) => break None,
                Err(e) => break Some(e),
            }
        };

        // The assembler fed in fixed-size drips.
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for chunk in prefix.chunks(drip) {
            asm.feed(chunk).unwrap();
            while let Some(frame) = asm.next_frame() {
                got.push(frame);
            }
        }
        prop_assert_eq!(got, want);
        match (asm.eof_truncation(), want_err) {
            (None, None) => {}
            (Some(FrameError::Truncated { .. }), Some(FrameError::Truncated { .. })) => {}
            (got_err, want_err) => prop_assert!(
                false,
                "assembler saw {got_err:?}, stream reader saw {want_err:?}"
            ),
        }
    }
}
