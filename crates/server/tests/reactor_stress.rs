//! Stress tests for the readiness-reactor connection engine.
//!
//! The reactor exists for exactly one reason: connection *count* must cost
//! registrations, not threads. These tests hold that claim under the two
//! classic adversaries:
//!
//! 1. **A thousand mostly-idle connections** — the acceptor must keep
//!    accepting and an active pusher must ingest at full speed while a
//!    thousand negotiated connections sit idle on two event loops, and the
//!    estimates served from that melee must be bit-identical to a
//!    blocking-engine server fed the same reports.
//! 2. **A slow-loris peer** — a connection dripping one byte per poll of a
//!    multi-megabyte claimed frame must not starve an active client, must
//!    not grow per-connection memory past the incremental-read bound, and
//!    must eventually be reaped by the per-frame idle deadline.

#![cfg(unix)]

use idldp_core::budget::Epsilon;
use idldp_core::grr::GeneralizedRandomizedResponse;
use idldp_core::mechanism::Mechanism;
use idldp_core::report::ReportData;
use idldp_server::{
    encode_reports_frame, ConnectionEngine, Frame, ReportClient, ReportServer, ServerConfig,
    PROTOCOL_VERSION,
};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

fn mechanism() -> Arc<dyn Mechanism> {
    Arc::new(GeneralizedRandomizedResponse::new(eps(1.2), 16).unwrap())
}

fn reactor_config(workers: usize, idle: Option<Duration>) -> ServerConfig {
    ServerConfig::builder()
        .engine(ConnectionEngine::Reactor)
        .connection_workers(workers)
        .idle_timeout(idle)
        .build()
        .unwrap()
}

/// Deterministic report population: folding is deterministic, so two
/// servers fed this same sequence must answer bit-identical estimates.
fn population(n: usize) -> Vec<ReportData> {
    (0..n).map(|i| ReportData::Value((i * 7) % 16)).collect()
}

/// Pushes the population in 250-report frames and returns the settled
/// `(users, estimates)` answer.
fn push_and_query(
    server: &ReportServer,
    mech: &dyn Mechanism,
    all: &[ReportData],
) -> (u64, Vec<f64>) {
    let (mut client, resumed) = ReportClient::connect(server.local_addr(), mech).unwrap();
    assert_eq!(resumed, 0);
    for chunk in all.chunks(250) {
        client.push_all(chunk).unwrap();
    }
    client.query_estimates().unwrap()
}

/// A thousand negotiated-then-idle connections multiplexed onto two event
/// loops: accept must not stall at any point (every handshake is a full
/// round trip), an active pusher must ingest and query through the crowd,
/// and the answer must be bit-identical to a blocking-engine server fed
/// the same reports.
#[test]
fn thousand_idle_connections_do_not_stall_accept_or_ingest() {
    let mech = mechanism();
    let all = population(4000);

    // Reference answer from the blocking engine.
    let blocking = ReportServer::start(
        Arc::clone(&mech),
        ServerConfig::builder()
            .engine(ConnectionEngine::Blocking)
            .build()
            .unwrap(),
    )
    .unwrap();
    let (want_users, want) = push_and_query(&blocking, mech.as_ref(), &all);
    blocking.shutdown();
    assert_eq!(want_users, all.len() as u64);

    // No idle timeout: a reap here would mean the reactor confused "idle"
    // with "dead" under load.
    let server = ReportServer::start(Arc::clone(&mech), reactor_config(2, None)).unwrap();

    // Half the crowd connects before any ingest...
    let mut crowd = Vec::with_capacity(1000);
    for _ in 0..500 {
        crowd.push(ReportClient::connect(server.local_addr(), mech.as_ref()).unwrap());
    }
    // ...the pusher streams half the population through the crowd...
    let (mut pusher, _) = ReportClient::connect(server.local_addr(), mech.as_ref()).unwrap();
    let half = all.len() / 2;
    for chunk in all[..half].chunks(250) {
        pusher.push_all(chunk).unwrap();
    }
    // ...and accept is still live mid-ingest: the other half of the crowd
    // handshakes (each a full round trip), then ingest finishes.
    for _ in 0..500 {
        crowd.push(ReportClient::connect(server.local_addr(), mech.as_ref()).unwrap());
    }
    assert_eq!(crowd.len(), 1000);
    for chunk in all[half..].chunks(250) {
        pusher.push_all(chunk).unwrap();
    }

    let (users, estimates) = pusher.query_estimates().unwrap();
    assert_eq!(
        users, want_users,
        "ingest completed through 1000 idle peers"
    );
    assert_eq!(estimates.len(), want.len());
    for (i, (g, w)) in estimates.iter().zip(&want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "estimate {i} differs between engines ({g} vs {w})"
        );
    }

    // A random crowd member still answers a query — the loops are not
    // wedged serving the pusher.
    let (users, _) = crowd[777].0.query_estimates().unwrap();
    assert_eq!(users, want_users);

    assert_eq!(server.fold_failures(), 0);
    assert_eq!(
        server.reaped_connections(),
        0,
        "no idle timeout configured, so nothing may be reaped"
    );
    drop(crowd);
    server.shutdown();
}

/// A slow-loris peer drips one byte per poll of a frame claiming a
/// multi-megabyte payload. The per-frame idle deadline must reap it (a
/// byte per poll never *completes* a frame), per-connection memory must
/// stay at the bytes actually received — not the claimed length — and an
/// active pusher sharing the loops must ingest at full speed throughout.
#[test]
fn slow_loris_is_reaped_and_does_not_starve_active_ingest() {
    let mech = mechanism();
    let idle = Duration::from_millis(300);
    let server = ReportServer::start(Arc::clone(&mech), reactor_config(2, Some(idle))).unwrap();

    // A backdrop of negotiated-then-silent connections (these too will hit
    // the idle deadline eventually — that is the deadline working).
    let mut crowd = Vec::with_capacity(100);
    for _ in 0..100 {
        crowd.push(ReportClient::connect(server.local_addr(), mech.as_ref()).unwrap());
    }

    // The loris: a real handshake, then a drip of a huge claimed frame.
    let hello = Frame::Hello {
        version: PROTOCOL_VERSION,
        kind: mech.kind().to_string(),
        shape: mech.report_shape(),
        report_len: mech.report_len() as u64,
        ldp_eps_bits: mech.ldp_epsilon().to_bits(),
        tenant: String::new(),
    };
    let mut loris = TcpStream::connect(server.local_addr()).unwrap();
    loris.write_all(&hello.encode()).unwrap();
    match Frame::read_from(&mut loris).unwrap() {
        Some(Frame::HelloAck { .. }) => {}
        other => panic!("loris handshake drew {other:?}"),
    }
    // ~500k reports encode to a multi-megabyte Reports frame; the loris
    // will deliver only a few hundred bytes of it, one per poll.
    let huge = encode_reports_frame(&population(500_000));
    let claimed = huge.len();
    assert!(claimed > 2 << 20, "claimed frame is only {claimed} bytes");
    loris.set_nodelay(true).unwrap();

    // Drip in a background thread until the server hangs up on us.
    let loris_thread = std::thread::spawn(move || {
        for byte in huge.iter().take(4096) {
            if loris.write_all(std::slice::from_ref(byte)).is_err() {
                return true; // reaped: the server reset the connection
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        false
    });

    // Meanwhile the active pusher ingests the whole population, each frame
    // completing well inside the idle deadline.
    let all = population(3000);
    let (users, estimates) = push_and_query(&server, mech.as_ref(), &all);
    assert_eq!(users, all.len() as u64, "pusher was not starved");
    assert_eq!(estimates.len(), 16);

    // The loris must be reaped: its write eventually fails, and the
    // server's reap counter moves.
    assert!(
        loris_thread.join().unwrap(),
        "loris dripped its whole budget without being reaped"
    );
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.reaped_connections() == 0 {
        assert!(Instant::now() < deadline, "reap counter never moved");
        std::thread::sleep(Duration::from_millis(20));
    }

    // Incremental-read bound: the server never buffered anything close to
    // the claimed frame — only bytes actually received are held. The bound
    // is generous (the pusher's own 250-report frames are a few KiB).
    let peak = server.peak_buffered_bytes();
    assert!(
        peak < claimed / 4,
        "peak buffered {peak} bytes approaches the {claimed}-byte claim"
    );

    assert_eq!(server.fold_failures(), 0);
    drop(crowd);
    server.shutdown();
}
