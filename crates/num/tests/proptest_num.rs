//! Property tests for the numerical substrate.

use idldp_num::barrier::{BarrierOptions, BarrierSolver, LinearConstraints, SmoothObjective};
use idldp_num::cholesky::Cholesky;
use idldp_num::matrix::Matrix;
use idldp_num::neldermead::{nelder_mead, NelderMeadOptions};
use idldp_num::rng::{derive_seed, SplitMix64};
use idldp_num::stats::RunningStats;
use idldp_num::{sample_binomial, sample_binomial_inversion};
use proptest::prelude::*;

/// Strategy: a random SPD matrix `AᵀA + n·I` of size 2..=6.
fn arb_spd() -> impl Strategy<Value = Matrix> {
    (2usize..=6, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = SplitMix64::new(seed);
        let mut b = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                b[(i, j)] = rng.next_f64() - 0.5;
            }
        }
        let mut a = b.transpose().matmul(&b);
        a.add_ridge(n as f64 * 0.5);
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cholesky_solve_inverts(a in arb_spd(), seed in any::<u64>()) {
        let n = a.rows();
        let mut rng = SplitMix64::new(seed);
        let rhs: Vec<f64> = (0..n).map(|_| rng.next_f64() * 4.0 - 2.0).collect();
        let chol = Cholesky::factor(&a).unwrap();
        let x = chol.solve(&rhs);
        let ax = a.matvec(&x);
        for (got, want) in ax.iter().zip(&rhs) {
            prop_assert!((got - want).abs() < 1e-6, "Ax={ax:?} rhs={rhs:?}");
        }
    }

    #[test]
    fn cholesky_factor_reconstructs(a in arb_spd()) {
        let chol = Cholesky::factor(&a).unwrap();
        let l = chol.factor_matrix();
        let llt = l.matmul(&l.transpose());
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                prop_assert!((llt[(i, j)] - a[(i, j)]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn matvec_transpose_adjoint(a in arb_spd(), seed in any::<u64>()) {
        // <Ax, y> = <x, Aᵀy> for all x, y.
        let n = a.rows();
        let mut rng = SplitMix64::new(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let y: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let lhs = idldp_num::vecops::dot(&a.matvec(&x), &y);
        let rhs = idldp_num::vecops::dot(&x, &a.matvec_t(&y));
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn nelder_mead_solves_shifted_quadratics(
        cx in -3.0f64..3.0,
        cy in -3.0f64..3.0,
        scale in 0.5f64..5.0,
    ) {
        let res = nelder_mead(
            |p| scale * ((p[0] - cx).powi(2) + (p[1] - cy).powi(2)),
            &[0.0, 0.0],
            &NelderMeadOptions::default(),
        );
        prop_assert!((res.x[0] - cx).abs() < 1e-3, "{res:?}");
        prop_assert!((res.x[1] - cy).abs() < 1e-3, "{res:?}");
    }

    #[test]
    fn barrier_projects_onto_box(
        cx in -4.0f64..4.0,
        cy in -4.0f64..4.0,
    ) {
        // min ‖x − c‖² over the unit box: solution is clamp(c, 0, 1).
        struct Quad { c: [f64; 2] }
        impl SmoothObjective for Quad {
            fn dim(&self) -> usize { 2 }
            fn value(&self, x: &[f64]) -> f64 {
                (x[0]-self.c[0]).powi(2) + (x[1]-self.c[1]).powi(2)
            }
            fn gradient(&self, x: &[f64], g: &mut [f64]) {
                g[0] = 2.0*(x[0]-self.c[0]);
                g[1] = 2.0*(x[1]-self.c[1]);
            }
            fn hessian(&self, _x: &[f64], h: &mut Matrix) {
                h[(0,0)] = 2.0; h[(1,1)] = 2.0;
            }
        }
        let mut cons = LinearConstraints::new(2);
        cons.push(&[1.0, 0.0], 1.0);
        cons.push(&[0.0, 1.0], 1.0);
        cons.push(&[-1.0, 0.0], 0.0);
        cons.push(&[0.0, -1.0], 0.0);
        let obj = Quad { c: [cx, cy] };
        let solver = BarrierSolver::new(&obj, &cons, BarrierOptions::default());
        let res = solver.solve(&[0.5, 0.5]).unwrap();
        let want = [cx.clamp(0.0, 1.0), cy.clamp(0.0, 1.0)];
        prop_assert!((res.x[0] - want[0]).abs() < 1e-3, "{:?} vs {want:?}", res.x);
        prop_assert!((res.x[1] - want[1]).abs() < 1e-3, "{:?} vs {want:?}", res.x);
    }

    #[test]
    fn running_stats_merge_associative(
        xs in proptest::collection::vec(-100.0f64..100.0, 3..60),
        split in 1usize..58,
    ) {
        let split = split.min(xs.len() - 1);
        let mut whole = RunningStats::new();
        for &x in &xs { whole.push(x); }
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for &x in &xs[..split] { left.push(x); }
        for &x in &xs[split..] { right.push(x); }
        left.merge(&right);
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-7);
        prop_assert_eq!(left.count(), whole.count());
    }

    #[test]
    fn binomial_samplers_within_support(
        n in 0u64..500,
        p in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let mut rng = SplitMix64::new(seed);
        let k1 = sample_binomial_inversion(&mut rng, n, p);
        let k2 = sample_binomial(&mut rng, n, p);
        prop_assert!(k1 <= n);
        prop_assert!(k2 <= n);
        if p == 0.0 { prop_assert_eq!(k1, 0); prop_assert_eq!(k2, 0); }
        if p == 1.0 { prop_assert_eq!(k1, n); prop_assert_eq!(k2, n); }
    }

    #[test]
    fn derived_seeds_do_not_collide_locally(master in any::<u64>()) {
        // 64 consecutive streams from one master must be pairwise distinct
        // (collision probability ~2^-52; a failure indicates mixer bugs).
        let seeds: Vec<u64> = (0..64).map(|s| derive_seed(master, s)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), 64);
    }

    #[test]
    fn quantile_bounds(xs in proptest::collection::vec(-50.0f64..50.0, 1..40), q in 0.0f64..=1.0) {
        let v = idldp_num::stats::quantile(&xs, q);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= min - 1e-12 && v <= max + 1e-12);
    }
}
