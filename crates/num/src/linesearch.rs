//! Backtracking (Armijo) line search.
//!
//! Used by the barrier Newton method: given a descent direction `d` at `x`,
//! find a step `s` such that `f(x + s d) <= f(x) + c1 * s * gᵀd`, shrinking
//! `s` geometrically. The caller supplies a *domain guard* (e.g. strict
//! feasibility of the barrier) through `f` returning `f64::INFINITY` outside
//! the domain — infinite values always fail the Armijo test, so the search
//! naturally backs off into the domain.

/// Options for [`backtrack`].
#[derive(Clone, Copy, Debug)]
pub struct LineSearchOptions {
    /// Initial step length (Newton methods should use 1.0).
    pub initial_step: f64,
    /// Armijo sufficient-decrease constant, typically 1e-4 .. 0.3.
    pub c1: f64,
    /// Geometric shrink factor in (0, 1), typically 0.5.
    pub shrink: f64,
    /// Maximum number of shrink iterations before giving up.
    pub max_iters: usize,
}

impl Default for LineSearchOptions {
    fn default() -> Self {
        Self {
            initial_step: 1.0,
            c1: 1e-4,
            shrink: 0.5,
            max_iters: 60,
        }
    }
}

/// Result of a successful line search.
#[derive(Clone, Debug)]
pub struct LineSearchResult {
    /// Accepted step length.
    pub step: f64,
    /// Objective value at the accepted point.
    pub value: f64,
    /// The accepted point itself.
    pub point: Vec<f64>,
}

/// Backtracking Armijo line search along `d` from `x`.
///
/// `f0` is `f(x)` and `slope` is the directional derivative `gᵀ d` (must be
/// negative for a descent direction). Returns `None` if no acceptable step is
/// found within `opts.max_iters` halvings, which signals the caller to stop
/// (usually meaning convergence to numerical precision).
pub fn backtrack<F>(
    f: &mut F,
    x: &[f64],
    d: &[f64],
    f0: f64,
    slope: f64,
    opts: &LineSearchOptions,
) -> Option<LineSearchResult>
where
    F: FnMut(&[f64]) -> f64,
{
    debug_assert_eq!(x.len(), d.len());
    let mut step = opts.initial_step;
    let mut trial = vec![0.0; x.len()];
    for _ in 0..opts.max_iters {
        for ((t, &xi), &di) in trial.iter_mut().zip(x).zip(d) {
            *t = xi + step * di;
        }
        let val = f(&trial);
        if val.is_finite() && val <= f0 + opts.c1 * step * slope {
            return Some(LineSearchResult {
                step,
                value: val,
                point: trial,
            });
        }
        step *= opts.shrink;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_newton_step_on_quadratic() {
        // f(x) = x², at x=2 the Newton direction is -2; full step reaches 0.
        let mut f = |x: &[f64]| x[0] * x[0];
        let res = backtrack(
            &mut f,
            &[2.0],
            &[-2.0],
            4.0,
            -8.0,
            &LineSearchOptions::default(),
        )
        .expect("should accept");
        assert_eq!(res.step, 1.0);
        assert!(res.value.abs() < 1e-12);
    }

    #[test]
    fn backs_off_from_infinite_region() {
        // Domain x > 0, f = -ln(x) + x (minimum at x = 1). From x = 2 the
        // direction -2 overshoots the boundary at the full step (x = -2);
        // the search must shrink until x + s*d > 0 and f decreases.
        let mut f = |x: &[f64]| {
            if x[0] <= 0.0 {
                f64::INFINITY
            } else {
                -x[0].ln() + x[0]
            }
        };
        let f0 = f(&[2.0]);
        let slope = (1.0 - 1.0 / 2.0) * -2.0; // g(2) = 1 - 1/2, d = -2
        let res = backtrack(
            &mut f,
            &[2.0],
            &[-2.0],
            f0,
            slope,
            &LineSearchOptions::default(),
        )
        .expect("should find interior step");
        assert!(res.point[0] > 0.0);
        assert!(res.value < f0);
    }

    #[test]
    fn gives_up_at_stationary_point() {
        // Ascent direction: no step satisfies Armijo with negative slope
        // requirement faked as tiny; expect None.
        let mut f = |x: &[f64]| x[0] * x[0];
        let res = backtrack(
            &mut f,
            &[1.0],
            &[1.0], // ascent direction
            1.0,
            -1e-18,
            &LineSearchOptions {
                max_iters: 10,
                ..Default::default()
            },
        );
        assert!(res.is_none());
    }
}
