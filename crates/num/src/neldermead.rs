//! Nelder–Mead simplex search (derivative-free minimization).
//!
//! The paper's `opt0` model (Eq. 10) minimizes a non-convex worst-case MSE
//! over the perturbation probabilities `(a_i, b_i)` with `t²` ratio
//! constraints; the paper notes it "is not convex in the feasible region".
//! We handle it with penalized Nelder–Mead, multi-started from the convex
//! `opt1`/`opt2` solutions (see `idldp-opt`). This module provides the plain
//! simplex engine; penalties and starting points are the caller's business —
//! the objective simply returns `f64::INFINITY` outside its domain.
//!
//! Uses the adaptive parameters of Gao & Han (2012), which behave better in
//! higher dimensions (`opt0` has `2t+1` unknowns, up to ~41 for t = 20).

/// Options for [`nelder_mead`].
#[derive(Clone, Copy, Debug)]
pub struct NelderMeadOptions {
    /// Maximum number of objective evaluations.
    pub max_evals: usize,
    /// Convergence tolerance on the simplex spread of objective values.
    pub f_tol: f64,
    /// Convergence tolerance on the simplex diameter.
    pub x_tol: f64,
    /// Relative size of the initial simplex around the start point.
    pub initial_scale: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        Self {
            max_evals: 20_000,
            f_tol: 1e-12,
            x_tol: 1e-10,
            initial_scale: 0.05,
        }
    }
}

/// Result of a Nelder–Mead run.
#[derive(Clone, Debug)]
pub struct NelderMeadResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Number of objective evaluations used.
    pub evals: usize,
    /// Whether a tolerance criterion (rather than the eval budget) stopped
    /// the search.
    pub converged: bool,
}

/// Minimizes `f` starting from `x0` with the Nelder–Mead simplex method.
///
/// `f` may return `f64::INFINITY` to mark points outside its domain; the
/// initial point must be inside (finite value), otherwise the simplex cannot
/// start and the result simply echoes `x0`.
pub fn nelder_mead<F>(mut f: F, x0: &[f64], opts: &NelderMeadOptions) -> NelderMeadResult
where
    F: FnMut(&[f64]) -> f64,
{
    let n = x0.len();
    assert!(n > 0, "nelder_mead: empty start point");
    let mut evals = 0usize;
    let mut eval = |p: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        let v = f(p);
        if v.is_nan() {
            f64::INFINITY
        } else {
            v
        }
    };

    // Adaptive coefficients (Gao & Han 2012).
    let nf = n as f64;
    let alpha = 1.0; // reflection
    let beta = 1.0 + 2.0 / nf; // expansion
    let gamma = 0.75 - 1.0 / (2.0 * nf); // contraction
    let delta = 1.0 - 1.0 / nf; // shrink

    // Build the initial simplex: x0 plus perturbations along each axis.
    let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
    let mut values: Vec<f64> = Vec::with_capacity(n + 1);
    simplex.push(x0.to_vec());
    values.push(eval(x0, &mut evals));
    if !values[0].is_finite() {
        return NelderMeadResult {
            x: x0.to_vec(),
            value: values[0],
            evals,
            converged: false,
        };
    }
    for i in 0..n {
        let mut p = x0.to_vec();
        let step = if p[i].abs() > 1e-12 {
            opts.initial_scale * p[i].abs()
        } else {
            opts.initial_scale * 0.1
        };
        p[i] += step;
        let mut v = eval(&p, &mut evals);
        if !v.is_finite() {
            // Try the other direction, then shrink toward x0 until finite.
            p[i] = x0[i] - step;
            v = eval(&p, &mut evals);
            let mut shrink = 0.5;
            while !v.is_finite() && shrink > 1e-6 {
                p[i] = x0[i] - step * shrink;
                v = eval(&p, &mut evals);
                shrink *= 0.5;
            }
            if !v.is_finite() {
                p[i] = x0[i]; // degenerate axis; keep at x0
                v = values[0];
            }
        }
        simplex.push(p);
        values.push(v);
    }

    let mut converged = false;
    while evals < opts.max_evals {
        // Order the simplex by objective value.
        let mut order: Vec<usize> = (0..=n).collect();
        order.sort_by(|&i, &j| values[i].partial_cmp(&values[j]).unwrap());
        let best = order[0];
        let worst = order[n];
        let second_worst = order[n - 1];

        // Convergence tests.
        let f_spread = values[worst] - values[best];
        let x_spread = simplex
            .iter()
            .map(|p| {
                p.iter()
                    .zip(&simplex[best])
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0_f64, f64::max)
            })
            .fold(0.0_f64, f64::max);
        if (f_spread.is_finite() && f_spread <= opts.f_tol) || x_spread <= opts.x_tol {
            converged = true;
            break;
        }

        // Centroid of all points except the worst.
        let mut centroid = vec![0.0; n];
        for (idx, p) in simplex.iter().enumerate() {
            if idx == worst {
                continue;
            }
            crate::vecops::axpy(1.0 / nf, p, &mut centroid);
        }

        let reflect = |coef: f64, from: &[f64]| -> Vec<f64> {
            centroid
                .iter()
                .zip(from)
                .map(|(c, w)| c + coef * (c - w))
                .collect()
        };

        // Reflection.
        let xr = reflect(alpha, &simplex[worst]);
        let fr = eval(&xr, &mut evals);
        if fr < values[best] {
            // Expansion.
            let xe = reflect(alpha * beta, &simplex[worst]);
            let fe = eval(&xe, &mut evals);
            if fe < fr {
                simplex[worst] = xe;
                values[worst] = fe;
            } else {
                simplex[worst] = xr;
                values[worst] = fr;
            }
        } else if fr < values[second_worst] {
            simplex[worst] = xr;
            values[worst] = fr;
        } else {
            // Contraction (outside if reflection improved on worst, else inside).
            let (xc, fc) = if fr < values[worst] {
                let xc = reflect(alpha * gamma, &simplex[worst]);
                let fc = eval(&xc, &mut evals);
                (xc, fc)
            } else {
                let xc = reflect(-gamma, &simplex[worst]);
                let fc = eval(&xc, &mut evals);
                (xc, fc)
            };
            if fc < values[worst].min(fr) {
                simplex[worst] = xc;
                values[worst] = fc;
            } else {
                // Shrink toward the best vertex.
                let best_point = simplex[best].clone();
                for idx in 0..=n {
                    if idx == best {
                        continue;
                    }
                    let p: Vec<f64> = best_point
                        .iter()
                        .zip(&simplex[idx])
                        .map(|(b, q)| b + delta * (q - b))
                        .collect();
                    values[idx] = eval(&p, &mut evals);
                    simplex[idx] = p;
                }
            }
        }
    }

    let mut best_idx = 0;
    for i in 1..=n {
        if values[i] < values[best_idx] {
            best_idx = i;
        }
    }
    NelderMeadResult {
        x: simplex.swap_remove(best_idx),
        value: values[best_idx],
        evals,
        converged,
    }
}

/// Runs [`nelder_mead`] repeatedly, restarting from the best point found
/// until an extra restart no longer improves by `improve_tol` (relative), up
/// to `max_restarts`. Restarts rebuild the simplex, which lets the method
/// escape degenerate (collapsed) simplices — important for the `opt0` model.
pub fn nelder_mead_restarts<F>(
    mut f: F,
    x0: &[f64],
    opts: &NelderMeadOptions,
    max_restarts: usize,
    improve_tol: f64,
) -> NelderMeadResult
where
    F: FnMut(&[f64]) -> f64,
{
    let mut best = nelder_mead(&mut f, x0, opts);
    for _ in 0..max_restarts {
        let next = nelder_mead(&mut f, &best.x, opts);
        let improved = best.value - next.value;
        let scale = best.value.abs().max(1e-12);
        let take = next.value < best.value;
        let significant = improved / scale > improve_tol;
        if take {
            let evals = best.evals + next.evals;
            best = next;
            best.evals = evals;
        }
        if !significant {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_bowl() {
        let res = nelder_mead(
            |x| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2),
            &[0.0, 0.0],
            &NelderMeadOptions::default(),
        );
        assert!(res.converged);
        assert!((res.x[0] - 3.0).abs() < 1e-4, "{:?}", res.x);
        assert!((res.x[1] + 1.0).abs() < 1e-4, "{:?}", res.x);
    }

    #[test]
    fn rosenbrock_2d() {
        let rosen = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let res = nelder_mead_restarts(
            rosen,
            &[-1.2, 1.0],
            &NelderMeadOptions {
                max_evals: 50_000,
                ..Default::default()
            },
            8,
            1e-10,
        );
        assert!((res.x[0] - 1.0).abs() < 1e-3, "{:?}", res);
        assert!((res.x[1] - 1.0).abs() < 1e-3, "{:?}", res);
    }

    #[test]
    fn respects_infinite_domain_guard() {
        // Domain x > 0; minimum of x + 1/x at x = 1.
        let res = nelder_mead(
            |x| {
                if x[0] <= 0.0 {
                    f64::INFINITY
                } else {
                    x[0] + 1.0 / x[0]
                }
            },
            &[0.3],
            &NelderMeadOptions::default(),
        );
        assert!((res.x[0] - 1.0).abs() < 1e-4, "{:?}", res);
        assert!((res.value - 2.0).abs() < 1e-7);
    }

    #[test]
    fn infinite_start_is_reported() {
        let res = nelder_mead(|_| f64::INFINITY, &[0.0], &NelderMeadOptions::default());
        assert!(!res.converged);
        assert!(res.value.is_infinite());
    }

    #[test]
    fn higher_dimensional_sphere() {
        let n = 10;
        let res = nelder_mead_restarts(
            |x| x.iter().map(|v| v * v).sum::<f64>(),
            &vec![1.0; n],
            &NelderMeadOptions {
                max_evals: 100_000,
                ..Default::default()
            },
            10,
            1e-9,
        );
        assert!(res.value < 1e-6, "{res:?}");
    }
}
