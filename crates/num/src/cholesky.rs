//! Cholesky factorization for symmetric positive-definite Newton systems.
//!
//! The interior-point solver in [`crate::barrier`] repeatedly solves
//! `H d = -g` where `H` is the (barrier-augmented) Hessian. `H` is SPD in the
//! interior of the feasible region; if numerical round-off makes a pivot
//! non-positive we retry with a small diagonal ridge, which corresponds to a
//! slightly damped Newton step and is standard practice.

use crate::matrix::Matrix;

/// A lower-triangular Cholesky factor `L` with `L Lᵀ = A`.
#[derive(Clone, Debug)]
pub struct Cholesky {
    l: Matrix,
}

/// Error returned when a matrix is not positive definite (even after the
/// caller-provided ridge).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NotPositiveDefinite {
    /// Index of the failing pivot.
    pub pivot: usize,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is not positive definite (pivot {})", self.pivot)
    }
}

impl std::error::Error for NotPositiveDefinite {}

impl Cholesky {
    /// Factorizes an SPD matrix `A = L Lᵀ`.
    ///
    /// Only the lower triangle of `a` is read.
    ///
    /// # Panics
    /// Panics if `a` is not square.
    pub fn factor(a: &Matrix) -> Result<Self, NotPositiveDefinite> {
        assert_eq!(a.rows(), a.cols(), "cholesky: matrix must be square");
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(NotPositiveDefinite { pivot: j });
            }
            let ljj = d.sqrt();
            l[(j, j)] = ljj;
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / ljj;
            }
        }
        Ok(Self { l })
    }

    /// Factorizes `A + ridge*I`, retrying with exponentially growing ridge
    /// until the factorization succeeds (up to `max_tries`).
    ///
    /// Returns the factor and the ridge that was actually applied.
    pub fn factor_with_ridge(
        a: &Matrix,
        initial_ridge: f64,
        max_tries: usize,
    ) -> Result<(Self, f64), NotPositiveDefinite> {
        match Self::factor(a) {
            Ok(c) => return Ok((c, 0.0)),
            Err(e) if max_tries == 0 => return Err(e),
            Err(_) => {}
        }
        let mut ridge = initial_ridge.max(f64::EPSILON);
        let mut last_err = NotPositiveDefinite { pivot: 0 };
        for _ in 0..max_tries {
            let mut b = a.clone();
            b.add_ridge(ridge);
            match Self::factor(&b) {
                Ok(c) => return Ok((c, ridge)),
                Err(e) => {
                    last_err = e;
                    ridge *= 10.0;
                }
            }
        }
        Err(last_err)
    }

    /// Solves `A x = b` given the factorization of `A`.
    ///
    /// # Panics
    /// Panics if `b.len()` does not match the matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(b.len(), n, "cholesky solve: dimension mismatch");
        // Forward substitution: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= self.l[(i, k)] * y[k];
            }
            y[i] = s / self.l[(i, i)];
        }
        // Backward substitution: Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= self.l[(k, i)] * x[k];
            }
            x[i] = s / self.l[(i, i)];
        }
        x
    }

    /// The lower-triangular factor.
    pub fn factor_matrix(&self) -> &Matrix {
        &self.l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_example() -> Matrix {
        // A = Bᵀ B + I for B = [[1,2],[3,4]] is SPD.
        Matrix::from_rows(2, 2, vec![11.0, 14.0, 14.0, 21.0])
    }

    #[test]
    fn factor_and_solve_roundtrip() {
        let a = spd_example();
        let chol = Cholesky::factor(&a).unwrap();
        let b = vec![1.0, 2.0];
        let x = chol.solve(&b);
        let ax = a.matvec(&x);
        for (got, want) in ax.iter().zip(&b) {
            assert!((got - want).abs() < 1e-10, "Ax={ax:?} b={b:?}");
        }
    }

    #[test]
    fn identity_factor_is_identity() {
        let chol = Cholesky::factor(&Matrix::identity(4)).unwrap();
        assert!((chol.factor_matrix().max_abs() - 1.0).abs() < 1e-15);
        assert_eq!(chol.solve(&[1.0, 2.0, 3.0, 4.0]), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(Cholesky::factor(&a).is_err());
    }

    #[test]
    fn ridge_recovers_semidefinite() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 1.0, 1.0, 1.0]); // PSD, singular
        let (chol, ridge) = Cholesky::factor_with_ridge(&a, 1e-10, 20).unwrap();
        assert!(ridge > 0.0);
        let x = chol.solve(&[2.0, 2.0]);
        // With a tiny ridge the solution approximately satisfies A x = b.
        let ax = a.matvec(&x);
        assert!((ax[0] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn larger_random_spd() {
        // Deterministic pseudo-random SPD matrix via Aᵀ A + n·I.
        let n = 8;
        let mut b = Matrix::zeros(n, n);
        let mut state = 1u64;
        for i in 0..n {
            for j in 0..n {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                b[(i, j)] = ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
            }
        }
        let mut a = b.transpose().matmul(&b);
        a.add_ridge(n as f64);
        let chol = Cholesky::factor(&a).unwrap();
        let rhs: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let x = chol.solve(&rhs);
        let ax = a.matvec(&x);
        for (got, want) in ax.iter().zip(&rhs) {
            assert!((got - want).abs() < 1e-8);
        }
    }
}
