//! Streaming and batch statistics used by the experiment harness.

/// Numerically stable running mean/variance (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Minimum observation (`+inf` for empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` for empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Mean of a slice (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Unbiased sample variance of a slice (0 for fewer than two elements).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Linear-interpolated quantile `q ∈ [0, 1]` of a slice.
///
/// # Panics
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Sum of squared differences between two equal-length slices — the
/// empirical total squared error used for MSE reporting.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn total_squared_error(estimate: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(estimate.len(), truth.len(), "length mismatch");
    estimate
        .iter()
        .zip(truth)
        .map(|(e, t)| (e - t) * (e - t))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_batch() {
        let xs = [1.0, 2.0, 3.0, 4.0, 10.0];
        let mut rs = RunningStats::new();
        for &x in &xs {
            rs.push(x);
        }
        assert!((rs.mean() - mean(&xs)).abs() < 1e-12);
        assert!((rs.variance() - variance(&xs)).abs() < 1e-12);
        assert_eq!(rs.min(), 1.0);
        assert_eq!(rs.max(), 10.0);
        assert_eq!(rs.count(), 5);
    }

    #[test]
    fn empty_stats_are_safe() {
        let rs = RunningStats::new();
        assert_eq!(rs.mean(), 0.0);
        assert_eq!(rs.variance(), 0.0);
        assert_eq!(rs.std_err(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = RunningStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert!((left.mean() - all.mean()).abs() < 1e-10);
        assert!((left.variance() - all.variance()).abs() < 1e-10);
        assert_eq!(left.count(), all.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.clone();
        a.merge(&RunningStats::new());
        assert_eq!(a.mean(), before.mean());
        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty.mean(), before.mean());
    }

    #[test]
    fn quantiles() {
        let xs = [3.0, 1.0, 2.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn tse_known() {
        assert_eq!(total_squared_error(&[1.0, 2.0], &[0.0, 4.0]), 5.0);
        assert_eq!(total_squared_error(&[], &[]), 0.0);
    }
}
