//! Small dense-vector helpers used by the solvers.
//!
//! These operate on plain `&[f64]` slices; all callers in this workspace deal
//! with vectors of at most a few dozen elements (the number of privacy levels
//! `t`), so simple scalar loops are both clear and fast enough.

/// Dot product `x · y`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// In-place `y += alpha * x`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Max norm `‖x‖∞`.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, v| m.max(v.abs()))
}

/// Element-wise difference `x - y` as a new vector.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// In-place scaling `x *= alpha`.
#[inline]
pub fn scale(x: &mut [f64], alpha: f64) {
    for v in x.iter_mut() {
        *v *= alpha;
    }
}

/// Returns `true` if every element is finite (no NaN/inf).
#[inline]
pub fn all_finite(x: &[f64]) -> bool {
    x.iter().all(|v| v.is_finite())
}

/// Linear interpolation `(1-t)*a + t*b`, element-wise, into a new vector.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn lerp(a: &[f64], b: &[f64], t: f64) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "lerp: length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (1.0 - t) * x + t * y)
        .collect()
}

/// Descending total order on `f64` with NaN demoted below every number.
///
/// `f64::total_cmp` makes the order total (no `partial_cmp` panic on NaN),
/// but its raw order puts `+NaN` *above* `+inf` — which would rank a
/// degenerate estimate as the largest value. This comparator keeps the
/// total-order guarantee and moves every NaN (either sign) to the very end
/// of a descending sort instead.
#[inline]
pub fn cmp_desc_nan_last(x: f64, y: f64) -> std::cmp::Ordering {
    match (x.is_nan(), y.is_nan()) {
        (false, false) => y.total_cmp(&x),
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
        (true, true) => std::cmp::Ordering::Equal,
    }
}

/// Indices of the `k` largest values, largest first; ties break toward the
/// smaller index. The one canonical ranking rule for heavy-hitter
/// identification — batch (`idldp-sim`) and streaming (`idldp-stream`)
/// top-k both call this, so their orderings can never drift apart.
///
/// Uses [`cmp_desc_nan_last`], so NaN values neither panic the sort nor
/// surface as top items.
pub fn top_k_indices(values: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| cmp_desc_nan_last(values[a], values[b]).then(a.cmp(&b)));
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn norms() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn sub_and_scale() {
        let d = sub(&[5.0, 2.0], &[1.0, 4.0]);
        assert_eq!(d, vec![4.0, -2.0]);
        let mut v = vec![2.0, -3.0];
        scale(&mut v, -0.5);
        assert_eq!(v, vec![-1.0, 1.5]);
    }

    #[test]
    fn finiteness() {
        assert!(all_finite(&[0.0, 1.0]));
        assert!(!all_finite(&[0.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
    }

    #[test]
    fn top_k_orders_ties_and_truncates() {
        let v = [5.0, 1.0, 9.0, 3.0];
        assert_eq!(top_k_indices(&v, 2), vec![2, 0]);
        assert_eq!(top_k_indices(&v, 10), vec![2, 0, 3, 1]);
        assert!(top_k_indices(&v, 0).is_empty());
        // Ties break toward the smaller index.
        assert_eq!(top_k_indices(&[1.0, 1.0, 1.0], 2), vec![0, 1]);
        // Signed zeros are still totally ordered (+0 ranks above -0).
        assert_eq!(top_k_indices(&[-0.0, 0.0], 1), vec![1]);
    }

    #[test]
    fn top_k_demotes_nan_below_everything() {
        let v = [1.0, f64::NAN, 3.0, f64::NEG_INFINITY, -f64::NAN];
        assert_eq!(top_k_indices(&v, 3), vec![2, 0, 3]);
        // NaNs come last (in index order), never first.
        assert_eq!(top_k_indices(&v, 5), vec![2, 0, 3, 1, 4]);
        assert_eq!(top_k_indices(&[f64::NAN, f64::NAN], 1), vec![0]);
        use std::cmp::Ordering;
        assert_eq!(
            cmp_desc_nan_last(f64::NAN, f64::INFINITY),
            Ordering::Greater
        );
        assert_eq!(cmp_desc_nan_last(f64::INFINITY, f64::NAN), Ordering::Less);
        assert_eq!(cmp_desc_nan_last(f64::NAN, f64::NAN), Ordering::Equal);
        assert_eq!(cmp_desc_nan_last(2.0, 1.0), Ordering::Less);
    }

    #[test]
    fn lerp_endpoints() {
        let a = [0.0, 10.0];
        let b = [1.0, 20.0];
        assert_eq!(lerp(&a, &b, 0.0), vec![0.0, 10.0]);
        assert_eq!(lerp(&a, &b, 1.0), vec![1.0, 20.0]);
        assert_eq!(lerp(&a, &b, 0.5), vec![0.5, 15.0]);
    }
}
