//! Deterministic randomness utilities.
//!
//! All experiments in the workspace are seeded: a single master seed is
//! expanded into independent per-stream seeds (per user, per trial, per
//! mechanism) with [`derive_seed`], a SplitMix64-based mixer. SplitMix64 is
//! the standard seeding generator recommended by the xoshiro authors; its
//! output is equidistributed over 64-bit values, so distinct stream indices
//! give effectively independent `StdRng` instances.

use rand::{RngCore, SeedableRng};

/// A SplitMix64 PRNG.
///
/// Small, fast, and with provably full period 2⁶⁴; we use it both directly
/// (for cheap non-cryptographic draws inside tests) and as a seed expander.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Advances the state and returns the next 64-bit output.
    ///
    /// Named after the reference implementation's `next()`; the `Iterator`
    /// trait is deliberately not implemented (an RNG is not an iterator).
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)` using the top 53 bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// Implementing `RngCore` gives the blanket `Rng` implementation, so
// `SplitMix64` works with all `rand` distributions and convenience methods.
impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (SplitMix64::next(self) >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        SplitMix64::next(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&SplitMix64::next(self).to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = SplitMix64::next(self).to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Derives a sub-seed for stream `stream` from `master`.
///
/// Distinct `(master, stream)` pairs map to well-separated seeds; the
/// mapping is stable across runs and platforms (pure integer arithmetic).
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut mix = SplitMix64::new(master ^ stream.wrapping_mul(0xA24BAED4963EE407));
    // Two rounds of mixing decorrelate adjacent stream indices.
    mix.next();
    mix.next()
}

/// Convenience: a seeded `StdRng` for stream `stream` of `master`.
pub fn stream_rng(master: u64, stream: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(derive_seed(master, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;

    #[test]
    fn splitmix_reference_values() {
        // Reference output for seed 1234567 from the public-domain C
        // implementation by Sebastiano Vigna.
        let mut rng = SplitMix64::new(1234567);
        let first = rng.next();
        let mut rng2 = SplitMix64::new(1234567);
        assert_eq!(first, rng2.next(), "determinism");
        // Sanity: different seeds diverge immediately.
        let mut rng3 = SplitMix64::new(1234568);
        assert_ne!(first, rng3.next());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(42);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn next_f64_roughly_uniform() {
        let mut rng = SplitMix64::new(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn derive_seed_separates_streams() {
        let master = 99;
        let s0 = derive_seed(master, 0);
        let s1 = derive_seed(master, 1);
        let s2 = derive_seed(master, 2);
        assert_ne!(s0, s1);
        assert_ne!(s1, s2);
        assert_ne!(s0, s2);
        // Stability.
        assert_eq!(s0, derive_seed(master, 0));
    }

    #[test]
    fn rngcore_fill_bytes_covers_remainder() {
        let mut rng = SplitMix64::new(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        // Not all zero with overwhelming probability.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn stream_rng_is_deterministic() {
        let mut a = stream_rng(11, 3);
        let mut b = stream_rng(11, 3);
        for _ in 0..10 {
            assert_eq!(a.random_range(0..1_000_000), b.random_range(0..1_000_000));
        }
    }

    #[test]
    fn usable_with_rand_traits() {
        let mut rng = SplitMix64::new(2024);
        let x: f64 = rng.random_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
        let b = rng.random_bool(0.5);
        let _ = b;
    }
}
