//! LU decomposition with partial pivoting.
//!
//! Needed by the *direct* mechanism optimizer (`idldp-opt::direct`): the
//! unbiased estimator for a general perturbation matrix `P` is
//! `ĉ = (Pᵀ)⁻¹ c`, and `Pᵀ` is square but not symmetric, so Cholesky does
//! not apply. Partial pivoting keeps the factorization stable for the
//! diagonally-dominant-ish matrices that feasible mechanisms produce.

use crate::matrix::Matrix;

/// An LU factorization `P A = L U` (with row-permutation `P`).
#[derive(Clone, Debug)]
pub struct Lu {
    /// Combined L (unit lower, below diagonal) and U (upper) factors.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row index in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (for determinants).
    sign: f64,
}

/// Error for numerically singular matrices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Singular {
    /// Column where no acceptable pivot was found.
    pub column: usize,
}

impl std::fmt::Display for Singular {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is numerically singular (column {})", self.column)
    }
}

impl std::error::Error for Singular {}

impl Lu {
    /// Factorizes a square matrix.
    ///
    /// # Panics
    /// Panics if `a` is not square.
    pub fn factor(a: &Matrix) -> Result<Self, Singular> {
        assert_eq!(a.rows(), a.cols(), "LU requires a square matrix");
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // Partial pivoting: largest |entry| in column k at or below row k.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < 1e-300 || !pivot_val.is_finite() {
                return Err(Singular { column: k });
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let delta = factor * lu[(k, j)];
                    lu[(i, j)] -= delta;
                }
            }
        }
        Ok(Self { lu, perm, sign })
    }

    /// Solves `A x = b`.
    ///
    /// # Panics
    /// Panics if `b.len()` does not match the matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.lu.rows();
        assert_eq!(b.len(), n, "LU solve: dimension mismatch");
        // Apply the permutation, then forward-substitute L y = P b.
        let mut y: Vec<f64> = (0..n).map(|i| b[self.perm[i]]).collect();
        for i in 1..n {
            let mut s = y[i];
            for k in 0..i {
                s -= self.lu[(i, k)] * y[k];
            }
            y[i] = s;
        }
        // Back-substitute U x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= self.lu[(i, k)] * x[k];
            }
            x[i] = s / self.lu[(i, i)];
        }
        x
    }

    /// The matrix inverse, column by column.
    pub fn inverse(&self) -> Matrix {
        let n = self.lu.rows();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e);
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        inv
    }

    /// The determinant (product of U's diagonal times the permutation sign).
    pub fn determinant(&self) -> f64 {
        let n = self.lu.rows();
        (0..n).map(|i| self.lu[(i, i)]).product::<f64>() * self.sign
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Matrix {
        Matrix::from_rows(3, 3, vec![2.0, 1.0, 1.0, 4.0, -6.0, 0.0, -2.0, 7.0, 2.0])
    }

    #[test]
    fn solve_known_system() {
        // Classic example with solution (1, -2, 2)... solve Ax = b.
        let a = example();
        let b = [5.0, -2.0, 9.0];
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&b);
        let ax = a.matvec(&x);
        for (got, want) in ax.iter().zip(&b) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let a = example();
        let inv = Lu::factor(&a).unwrap().inverse();
        let prod = a.matmul(&inv);
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - want).abs() < 1e-10, "{prod:?}");
            }
        }
    }

    #[test]
    fn determinant_known() {
        // det of the example = 2(-12-0) - 1(8-0) + 1(28-12) = -24-8+16 = -16.
        let lu = Lu::factor(&example()).unwrap();
        assert!(
            (lu.determinant() + 16.0).abs() < 1e-10,
            "{}",
            lu.determinant()
        );
        let id = Lu::factor(&Matrix::identity(4)).unwrap();
        assert!((id.determinant() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&[3.0, 7.0]);
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((lu.determinant() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_singular() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(Lu::factor(&a).is_err());
    }

    #[test]
    fn random_matrices_roundtrip() {
        let mut rng = crate::rng::SplitMix64::new(31);
        for n in [2usize, 4, 6] {
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    a[(i, j)] = rng.next_f64() - 0.5;
                }
                a[(i, i)] += 1.0; // keep well-conditioned
            }
            let b: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
            let x = Lu::factor(&a).unwrap().solve(&b);
            let ax = a.matvec(&x);
            for (got, want) in ax.iter().zip(&b) {
                assert!((got - want).abs() < 1e-8);
            }
        }
    }
}
