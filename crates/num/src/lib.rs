//! # `idldp-num` — numerical substrate for the `idldp` workspace
//!
//! The ID-LDP paper (Gu et al., ICDE 2020) determines the perturbation
//! probabilities of its IDUE mechanism by solving small constrained
//! optimization problems (Eqs. 10, 12, 13 of the paper): two convex programs
//! with linear inequality constraints and one non-convex program. No suitable
//! solver crate is available offline, so this crate implements the required
//! numerical machinery from scratch:
//!
//! * [`matrix`] — dense row-major matrices with the handful of operations the
//!   solvers need (mat-vec, transpose products, symmetric rank-one updates).
//! * [`cholesky`] — Cholesky factorization / SPD solves for Newton systems.
//! * [`lu`] — LU decomposition with partial pivoting (general square
//!   solves/inverses, used by the direct-matrix estimator).
//! * [`linesearch`] — backtracking Armijo line search.
//! * [`barrier`] — a log-barrier (interior-point) Newton method for
//!   `min f(x)  s.t.  A x <= b` with smooth convex `f`.
//! * [`neldermead`] — a derivative-free Nelder–Mead simplex method with
//!   restarts, used for the non-convex `opt0` model.
//! * [`binomial`] — an inversion-based exact binomial sampler plus a fast
//!   path delegating to `rand_distr`'s BTPE for large `n·p`; the two are
//!   cross-checked in tests. Used by the aggregate simulation path.
//! * [`rng`] — SplitMix64 PRNG and deterministic per-stream seed derivation.
//! * [`stats`] — running statistics (Welford), quantiles, RMSE helpers.
//! * [`vecops`] — small vector helpers (dot, axpy, norms).
//!
//! Everything is `unsafe`-free (workspace lint) and deterministic given
//! explicit RNG seeds.

pub mod barrier;
pub mod binomial;
pub mod cholesky;
pub mod linesearch;
pub mod lu;
pub mod matrix;
pub mod neldermead;
pub mod rng;
pub mod stats;
pub mod vecops;

pub use barrier::{
    BarrierOptions, BarrierResult, BarrierSolver, LinearConstraints, SmoothObjective,
};
pub use binomial::{sample_binomial, sample_binomial_inversion};
pub use cholesky::Cholesky;
pub use lu::Lu;
pub use matrix::Matrix;
pub use neldermead::{nelder_mead, NelderMeadOptions, NelderMeadResult};
pub use rng::{derive_seed, SplitMix64};
pub use stats::RunningStats;
