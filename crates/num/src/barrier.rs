//! Log-barrier interior-point method for linearly constrained convex programs.
//!
//! Solves `min f(x)  s.t.  A x <= b` for smooth convex `f` by minimizing the
//! barrier-augmented objective `t·f(x) − Σₖ ln(bₖ − aₖᵀx)` with damped Newton
//! steps, increasing `t` geometrically (standard path-following; see Boyd &
//! Vandenberghe §11). The paper's `opt1` (Eq. 12) and `opt2` (Eq. 13) models
//! are exactly this shape: separable convex objectives with `t²` linear
//! pairwise constraints, and at most a few dozen variables, so a dense Newton
//! system solved via Cholesky is the right tool.

use crate::cholesky::Cholesky;
use crate::linesearch::{backtrack, LineSearchOptions};
use crate::matrix::Matrix;
use crate::vecops;

/// A smooth, twice-differentiable objective.
pub trait SmoothObjective {
    /// Number of variables.
    fn dim(&self) -> usize;
    /// Objective value. May return `f64::INFINITY` outside the domain of `f`
    /// (e.g. where a denominator vanishes); the solver treats infinite values
    /// as a barrier.
    fn value(&self, x: &[f64]) -> f64;
    /// Writes the gradient into `grad` (length `dim`).
    fn gradient(&self, x: &[f64], grad: &mut [f64]);
    /// Writes the Hessian into `hess` (a `dim x dim` matrix, pre-cleared by
    /// the solver).
    fn hessian(&self, x: &[f64], hess: &mut Matrix);
}

/// A system of linear inequality constraints `A x <= b`.
#[derive(Clone, Debug)]
pub struct LinearConstraints {
    a: Matrix,
    b: Vec<f64>,
    nrows: usize,
    dim: usize,
}

impl LinearConstraints {
    /// Creates an empty constraint system on `dim` variables.
    pub fn new(dim: usize) -> Self {
        Self {
            a: Matrix::zeros(0, dim),
            b: Vec::new(),
            nrows: 0,
            dim,
        }
    }

    /// Appends one constraint row `coeffs · x <= rhs`.
    ///
    /// # Panics
    /// Panics if `coeffs.len() != dim`.
    pub fn push(&mut self, coeffs: &[f64], rhs: f64) {
        assert_eq!(coeffs.len(), self.dim, "constraint row has wrong dimension");
        let mut data = std::mem::replace(&mut self.a, Matrix::zeros(0, 0))
            .data()
            .to_vec();
        data.extend_from_slice(coeffs);
        self.nrows += 1;
        self.a = Matrix::from_rows(self.nrows, self.dim, data);
        self.b.push(rhs);
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.nrows
    }

    /// `true` when there are no constraints.
    pub fn is_empty(&self) -> bool {
        self.nrows == 0
    }

    /// Number of variables.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Slack vector `b − A x` (positive inside the feasible region).
    pub fn slacks(&self, x: &[f64]) -> Vec<f64> {
        let ax = self.a.matvec(x);
        self.b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect()
    }

    /// Largest violation `max(0, max_k (aₖᵀx − bₖ))`; zero means feasible.
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        self.slacks(x).into_iter().fold(0.0_f64, |m, s| m.max(-s))
    }

    /// `true` if every slack is at least `margin`.
    pub fn is_strictly_feasible(&self, x: &[f64], margin: f64) -> bool {
        self.slacks(x).into_iter().all(|s| s > margin)
    }

    /// Borrow of the coefficient matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.a
    }

    /// Borrow of the right-hand sides.
    pub fn rhs(&self) -> &[f64] {
        &self.b
    }
}

/// Options controlling [`BarrierSolver`].
#[derive(Clone, Debug)]
pub struct BarrierOptions {
    /// Initial barrier weight `t` (larger starts closer to the true problem).
    pub t_init: f64,
    /// Geometric growth factor for `t` between centering steps.
    pub mu: f64,
    /// Target duality-gap bound: stop when `m / t < gap_tol`.
    pub gap_tol: f64,
    /// Newton decrement tolerance for each centering problem.
    pub newton_tol: f64,
    /// Maximum Newton iterations per centering step.
    pub max_newton: usize,
    /// Maximum outer (centering) iterations.
    pub max_outer: usize,
    /// Line-search configuration.
    pub linesearch: LineSearchOptions,
}

impl Default for BarrierOptions {
    fn default() -> Self {
        Self {
            t_init: 1.0,
            mu: 20.0,
            gap_tol: 1e-9,
            newton_tol: 1e-10,
            max_newton: 100,
            max_outer: 60,
            linesearch: LineSearchOptions {
                c1: 0.01,
                ..Default::default()
            },
        }
    }
}

/// Result of a successful barrier solve.
#[derive(Clone, Debug)]
pub struct BarrierResult {
    /// Minimizer (strictly feasible).
    pub x: Vec<f64>,
    /// Objective value `f(x)` (without barrier terms).
    pub value: f64,
    /// Number of outer centering iterations performed.
    pub outer_iterations: usize,
    /// Total Newton steps across all centering problems.
    pub newton_steps: usize,
    /// Upper bound on the suboptimality gap `m / t_final`.
    pub gap_bound: f64,
}

/// Errors from [`BarrierSolver::solve`].
#[derive(Clone, Debug, PartialEq)]
pub enum BarrierError {
    /// The provided starting point is not strictly feasible.
    InfeasibleStart {
        /// Largest constraint violation at the starting point.
        violation: f64,
    },
    /// The Newton system could not be solved (Hessian numerically singular).
    NumericalFailure(String),
}

impl std::fmt::Display for BarrierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BarrierError::InfeasibleStart { violation } => {
                write!(f, "starting point infeasible (violation {violation:.3e})")
            }
            BarrierError::NumericalFailure(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl std::error::Error for BarrierError {}

/// Log-barrier interior-point solver.
pub struct BarrierSolver<'a, O: SmoothObjective> {
    objective: &'a O,
    constraints: &'a LinearConstraints,
    options: BarrierOptions,
}

impl<'a, O: SmoothObjective> BarrierSolver<'a, O> {
    /// Creates a solver for `min objective  s.t.  constraints`.
    ///
    /// # Panics
    /// Panics if the dimensions of the objective and constraints disagree.
    pub fn new(
        objective: &'a O,
        constraints: &'a LinearConstraints,
        options: BarrierOptions,
    ) -> Self {
        assert_eq!(
            objective.dim(),
            constraints.dim(),
            "objective/constraint dimension mismatch"
        );
        Self {
            objective,
            constraints,
            options,
        }
    }

    /// Barrier value `t f(x) − Σ ln sₖ`, or `+inf` outside the interior.
    fn barrier_value(&self, t: f64, x: &[f64]) -> f64 {
        let fx = self.objective.value(x);
        if !fx.is_finite() {
            return f64::INFINITY;
        }
        let mut phi = t * fx;
        for s in self.constraints.slacks(x) {
            if s <= 0.0 {
                return f64::INFINITY;
            }
            phi -= s.ln();
        }
        phi
    }

    /// One centering solve: minimize the barrier for fixed `t` from `x`.
    fn center(&self, t: f64, x: &mut Vec<f64>) -> Result<usize, BarrierError> {
        let n = self.objective.dim();
        let m = self.constraints.len();
        let mut grad = vec![0.0; n];
        let mut hess = Matrix::zeros(n, n);
        let mut steps = 0;
        for _ in 0..self.options.max_newton {
            // Gradient and Hessian of the barrier objective.
            self.objective.gradient(x, &mut grad);
            vecops::scale(&mut grad, t);
            hess.clear();
            let mut fh = Matrix::zeros(n, n);
            self.objective.hessian(x, &mut fh);
            fh.scale(t);
            for i in 0..n {
                let row = fh.row(i).to_vec();
                vecops::axpy(1.0, &row, hess.row_mut(i));
            }
            let slacks = self.constraints.slacks(x);
            for k in 0..m {
                let s = slacks[k];
                let ak = self.constraints.matrix().row(k).to_vec();
                vecops::axpy(1.0 / s, &ak, &mut grad);
                hess.add_rank_one(1.0 / (s * s), &ak);
            }

            // Newton direction H d = -g.
            let (chol, _ridge) = Cholesky::factor_with_ridge(&hess, 1e-12, 30)
                .map_err(|e| BarrierError::NumericalFailure(e.to_string()))?;
            let neg_g: Vec<f64> = grad.iter().map(|g| -g).collect();
            let d = chol.solve(&neg_g);
            let slope = vecops::dot(&grad, &d);
            // Newton decrement λ² = −gᵀd; stop when small.
            let lambda2 = -slope;
            if lambda2 / 2.0 <= self.options.newton_tol {
                break;
            }
            let phi0 = self.barrier_value(t, x);
            let mut phi = |p: &[f64]| self.barrier_value(t, p);
            match backtrack(&mut phi, x, &d, phi0, slope, &self.options.linesearch) {
                Some(res) => {
                    *x = res.point;
                    steps += 1;
                }
                None => break, // no progress possible at this precision
            }
        }
        Ok(steps)
    }

    /// Runs the full path-following scheme from a strictly feasible `x0`.
    pub fn solve(&self, x0: &[f64]) -> Result<BarrierResult, BarrierError> {
        if !self.constraints.is_strictly_feasible(x0, 0.0) {
            return Err(BarrierError::InfeasibleStart {
                violation: self.constraints.max_violation(x0),
            });
        }
        let m = self.constraints.len().max(1) as f64;
        let mut t = self.options.t_init;
        let mut x = x0.to_vec();
        let mut newton_steps = 0;
        let mut outer = 0;
        while outer < self.options.max_outer {
            newton_steps += self.center(t, &mut x)?;
            outer += 1;
            if m / t < self.options.gap_tol {
                break;
            }
            t *= self.options.mu;
        }
        Ok(BarrierResult {
            value: self.objective.value(&x),
            gap_bound: m / t,
            x,
            outer_iterations: outer,
            newton_steps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// f(x) = ‖x − c‖² — a strictly convex quadratic.
    struct Quadratic {
        center: Vec<f64>,
    }

    impl SmoothObjective for Quadratic {
        fn dim(&self) -> usize {
            self.center.len()
        }
        fn value(&self, x: &[f64]) -> f64 {
            x.iter()
                .zip(&self.center)
                .map(|(xi, ci)| (xi - ci) * (xi - ci))
                .sum()
        }
        fn gradient(&self, x: &[f64], grad: &mut [f64]) {
            for ((g, xi), ci) in grad.iter_mut().zip(x).zip(&self.center) {
                *g = 2.0 * (xi - ci);
            }
        }
        fn hessian(&self, _x: &[f64], hess: &mut Matrix) {
            for i in 0..hess.rows() {
                hess[(i, i)] = 2.0;
            }
        }
    }

    #[test]
    fn unconstrained_interior_minimum() {
        // Minimum at c = (0.5, 0.5) is inside the box 0 <= x <= 1.
        let obj = Quadratic {
            center: vec![0.5, 0.5],
        };
        let mut cons = LinearConstraints::new(2);
        cons.push(&[1.0, 0.0], 1.0);
        cons.push(&[0.0, 1.0], 1.0);
        cons.push(&[-1.0, 0.0], 0.0);
        cons.push(&[0.0, -1.0], 0.0);
        let solver = BarrierSolver::new(&obj, &cons, BarrierOptions::default());
        let res = solver.solve(&[0.2, 0.8]).unwrap();
        assert!((res.x[0] - 0.5).abs() < 1e-6, "{:?}", res.x);
        assert!((res.x[1] - 0.5).abs() < 1e-6, "{:?}", res.x);
        assert!(res.value < 1e-10);
    }

    #[test]
    fn active_constraint_projection() {
        // Minimum of ‖x − (2,0)‖² subject to x₁ <= 1 is at (1, 0).
        let obj = Quadratic {
            center: vec![2.0, 0.0],
        };
        let mut cons = LinearConstraints::new(2);
        cons.push(&[1.0, 0.0], 1.0);
        let solver = BarrierSolver::new(&obj, &cons, BarrierOptions::default());
        let res = solver.solve(&[0.0, 0.0]).unwrap();
        assert!((res.x[0] - 1.0).abs() < 1e-4, "{:?}", res.x);
        assert!(res.x[1].abs() < 1e-6, "{:?}", res.x);
        assert!((res.value - 1.0).abs() < 1e-3);
    }

    #[test]
    fn rejects_infeasible_start() {
        let obj = Quadratic { center: vec![0.0] };
        let mut cons = LinearConstraints::new(1);
        cons.push(&[1.0], 1.0);
        let solver = BarrierSolver::new(&obj, &cons, BarrierOptions::default());
        let err = solver.solve(&[2.0]).unwrap_err();
        assert!(matches!(err, BarrierError::InfeasibleStart { .. }));
    }

    #[test]
    fn simplex_constrained_entropy_like() {
        // min Σ (x_i - 1)² s.t. x₁ + x₂ <= 1, x >= 0. Optimum at (0.5, 0.5).
        let obj = Quadratic {
            center: vec![1.0, 1.0],
        };
        let mut cons = LinearConstraints::new(2);
        cons.push(&[1.0, 1.0], 1.0);
        cons.push(&[-1.0, 0.0], 0.0);
        cons.push(&[0.0, -1.0], 0.0);
        let solver = BarrierSolver::new(&obj, &cons, BarrierOptions::default());
        let res = solver.solve(&[0.1, 0.1]).unwrap();
        assert!((res.x[0] - 0.5).abs() < 1e-4, "{:?}", res.x);
        assert!((res.x[1] - 0.5).abs() < 1e-4, "{:?}", res.x);
    }

    #[test]
    fn constraint_helpers() {
        let mut cons = LinearConstraints::new(2);
        cons.push(&[1.0, 1.0], 1.0);
        assert_eq!(cons.len(), 1);
        assert!(!cons.is_empty());
        assert!(cons.is_strictly_feasible(&[0.2, 0.2], 0.1));
        assert!(!cons.is_strictly_feasible(&[0.6, 0.6], 0.0));
        assert!((cons.max_violation(&[0.6, 0.6]) - 0.2).abs() < 1e-12);
        assert_eq!(cons.max_violation(&[0.0, 0.0]), 0.0);
    }
}
