//! Binomial sampling for the aggregate simulation path.
//!
//! For frequency estimation with unary-encoding mechanisms, the server only
//! sees per-bit *counts*. Because users perturb independently, the count of
//! 1s contributed by users whose true bit is 1 is exactly
//! `Binomial(c*_i, a_i)` and by the rest `Binomial(n − c*_i, b_i)`. Sampling
//! those two binomials reproduces the distribution of the server-side counts
//! without simulating `n·m` Bernoulli draws — an `O(n·m) → O(m)` speedup
//! that makes the paper-scale figures (n = 10⁵..10⁶, m up to 4·10⁴) cheap.
//!
//! Two samplers are provided and cross-checked in tests:
//! * [`sample_binomial_inversion`] — exact inversion by summation, `O(n·p)`
//!   expected time, written from scratch (no dependencies), used as the
//!   reference implementation;
//! * [`sample_binomial`] — production path delegating to `rand_distr`'s
//!   BTPE-based `Binomial` (O(1) amortized for large `n·p`).

use rand::Rng;
use rand_distr::{Binomial, Distribution};

/// Exact inversion sampler for `Binomial(n, p)`.
///
/// Walks the CDF from `k = 0`, which takes `O(n·p)` expected steps; fine for
/// small `n·p` and as a reference for testing. For `p > 0.5` the complement
/// trick keeps the walk short.
///
/// # Panics
/// Panics if `p` is not in `[0, 1]`.
pub fn sample_binomial_inversion<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    if p > 0.5 {
        return n - sample_binomial_inversion(rng, n, 1.0 - p);
    }
    // Inversion: find smallest k with F(k) >= u.
    let q = 1.0 - p;
    let s = p / q;
    let mut pmf = q.powf(n as f64); // P(X = 0)
    if pmf == 0.0 {
        // n ln q underflowed; fall back to a normal-approximation cut-off
        // walk starting near the mean. Extremely rare for the parameter
        // ranges used in this workspace (guarded by sample_binomial).
        return sample_binomial_normal_clamped(rng, n, p);
    }
    let mut cdf = pmf;
    let u: f64 = rng.random();
    let mut k = 0u64;
    while u > cdf && k < n {
        k += 1;
        pmf *= s * ((n - k + 1) as f64) / (k as f64);
        cdf += pmf;
        if pmf < f64::MIN_POSITIVE && cdf < u {
            // Numerical tail exhaustion; clamp to the far tail.
            return k;
        }
    }
    k
}

/// Gaussian-approximation fallback, clamped to `[0, n]`. Only used when the
/// exact inversion underflows (`n` extremely large with tiny `q^n`).
fn sample_binomial_normal_clamped<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    let mean = n as f64 * p;
    let sd = (n as f64 * p * (1.0 - p)).sqrt();
    // Box–Muller using two uniforms.
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let v = (mean + sd * z).round();
    v.clamp(0.0, n as f64) as u64
}

/// Samples `Binomial(n, p)` using `rand_distr`'s BTPE implementation.
///
/// # Panics
/// Panics if `p` is not in `[0, 1]`.
pub fn sample_binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    Binomial::new(n, p)
        .expect("validated parameters")
        .sample(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn mean_var(samples: &[u64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().map(|&x| x as f64).sum::<f64>() / n;
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / (n - 1.0);
        (mean, var)
    }

    #[test]
    fn inversion_edge_cases() {
        let mut rng = SplitMix64::new(1);
        assert_eq!(sample_binomial_inversion(&mut rng, 0, 0.5), 0);
        assert_eq!(sample_binomial_inversion(&mut rng, 10, 0.0), 0);
        assert_eq!(sample_binomial_inversion(&mut rng, 10, 1.0), 10);
    }

    #[test]
    fn btpe_edge_cases() {
        let mut rng = SplitMix64::new(2);
        assert_eq!(sample_binomial(&mut rng, 0, 0.3), 0);
        assert_eq!(sample_binomial(&mut rng, 7, 0.0), 0);
        assert_eq!(sample_binomial(&mut rng, 7, 1.0), 7);
    }

    #[test]
    fn inversion_matches_moments() {
        let mut rng = SplitMix64::new(3);
        let (n, p) = (50u64, 0.3);
        let samples: Vec<u64> = (0..20_000)
            .map(|_| sample_binomial_inversion(&mut rng, n, p))
            .collect();
        let (mean, var) = mean_var(&samples);
        let want_mean = n as f64 * p;
        let want_var = n as f64 * p * (1.0 - p);
        assert!((mean - want_mean).abs() < 0.15, "mean={mean}");
        assert!((var - want_var).abs() < 0.6, "var={var}");
    }

    #[test]
    fn inversion_high_p_complement() {
        let mut rng = SplitMix64::new(4);
        let (n, p) = (40u64, 0.85);
        let samples: Vec<u64> = (0..20_000)
            .map(|_| sample_binomial_inversion(&mut rng, n, p))
            .collect();
        let (mean, _) = mean_var(&samples);
        assert!((mean - 34.0).abs() < 0.15, "mean={mean}");
        assert!(samples.iter().all(|&s| s <= n));
    }

    #[test]
    fn samplers_agree_statistically() {
        // Same distribution => moments should agree within Monte-Carlo noise.
        let mut rng = SplitMix64::new(5);
        let (n, p) = (200u64, 0.12);
        let inv: Vec<u64> = (0..20_000)
            .map(|_| sample_binomial_inversion(&mut rng, n, p))
            .collect();
        let fast: Vec<u64> = (0..20_000)
            .map(|_| sample_binomial(&mut rng, n, p))
            .collect();
        let (mi, vi) = mean_var(&inv);
        let (mf, vf) = mean_var(&fast);
        assert!((mi - mf).abs() < 0.2, "means {mi} vs {mf}");
        assert!((vi - vf).abs() < 1.5, "vars {vi} vs {vf}");
    }

    #[test]
    fn large_n_does_not_hang_or_overflow() {
        let mut rng = SplitMix64::new(6);
        let v = sample_binomial(&mut rng, 10_000_000, 0.25);
        let mean = 2_500_000.0;
        let sd = (10_000_000.0 * 0.25 * 0.75_f64).sqrt();
        assert!((v as f64 - mean).abs() < 10.0 * sd);
    }

    #[test]
    #[should_panic(expected = "p must be in [0,1]")]
    fn rejects_bad_p() {
        let mut rng = SplitMix64::new(7);
        let _ = sample_binomial(&mut rng, 10, 1.5);
    }
}
