//! Dense row-major matrices.
//!
//! The optimization problems in this workspace have at most a few dozen
//! variables (`t` privacy levels, so `t` or `2t+1` unknowns) and `O(t²)`
//! constraints, so a simple dense representation is the right tool: no
//! sparsity bookkeeping, predictable memory layout, trivially testable.

use std::fmt;

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_rows: data length mismatch");
        Self { rows, cols, data }
    }

    /// Creates a diagonal matrix from a slice.
    pub fn diag(d: &[f64]) -> Self {
        let n = d.len();
        let mut m = Self::zeros(n, n);
        for (i, &v) in d.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Matrix-vector product `A x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        (0..self.rows)
            .map(|i| crate::vecops::dot(self.row(i), x))
            .collect()
    }

    /// Transposed matrix-vector product `Aᵀ x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.rows()`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_t: dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            crate::vecops::axpy(x[i], self.row(i), &mut out);
        }
        out
    }

    /// In-place symmetric rank-one update `self += alpha * v vᵀ`.
    ///
    /// # Panics
    /// Panics if `self` is not square of size `v.len()`.
    pub fn add_rank_one(&mut self, alpha: f64, v: &[f64]) {
        assert_eq!(self.rows, self.cols, "add_rank_one: matrix must be square");
        assert_eq!(v.len(), self.rows, "add_rank_one: dimension mismatch");
        for i in 0..self.rows {
            let avi = alpha * v[i];
            let row = self.row_mut(i);
            for (j, vj) in v.iter().enumerate() {
                row[j] += avi * vj;
            }
        }
    }

    /// In-place diagonal update `self += alpha * diag(d)`.
    ///
    /// # Panics
    /// Panics if `self` is not square of size `d.len()`.
    pub fn add_diag(&mut self, alpha: f64, d: &[f64]) {
        assert_eq!(self.rows, self.cols, "add_diag: matrix must be square");
        assert_eq!(d.len(), self.rows, "add_diag: dimension mismatch");
        for (i, &v) in d.iter().enumerate() {
            self[(i, i)] += alpha * v;
        }
    }

    /// In-place scalar ridge `self += alpha * I`.
    ///
    /// # Panics
    /// Panics if `self` is not square.
    pub fn add_ridge(&mut self, alpha: f64) {
        assert_eq!(self.rows, self.cols, "add_ridge: matrix must be square");
        for i in 0..self.rows {
            self[(i, i)] += alpha;
        }
    }

    /// In-place scaling `self *= alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for v in self.data.iter_mut() {
            *v *= alpha;
        }
    }

    /// Sets all entries to zero, keeping the shape.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Dense matrix product `self * other`.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul: dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let orow = other.row(k).to_vec();
                crate::vecops::axpy(aik, &orow, out.row_mut(i));
            }
        }
        out
    }

    /// Maximum absolute entry, useful for convergence checks in tests.
    pub fn max_abs(&self) -> f64 {
        crate::vecops::norm_inf(&self.data)
    }

    /// `true` if all entries are finite.
    pub fn all_finite(&self) -> bool {
        crate::vecops::all_finite(&self.data)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            writeln!(
                f,
                "  [{}]",
                self.row(i)
                    .iter()
                    .map(|v| format!("{v:10.4}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec_is_noop() {
        let m = Matrix::identity(3);
        let x = vec![1.0, -2.0, 3.0];
        assert_eq!(m.matvec(&x), x);
    }

    #[test]
    fn matvec_known() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn matvec_t_matches_transpose_matvec() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = vec![2.0, -1.0];
        assert_eq!(a.matvec_t(&x), a.transpose().matvec(&x));
    }

    #[test]
    fn rank_one_update() {
        let mut m = Matrix::zeros(2, 2);
        m.add_rank_one(2.0, &[1.0, 3.0]);
        assert_eq!(m[(0, 0)], 2.0);
        assert_eq!(m[(0, 1)], 6.0);
        assert_eq!(m[(1, 0)], 6.0);
        assert_eq!(m[(1, 1)], 18.0);
    }

    #[test]
    fn diag_and_ridge() {
        let mut m = Matrix::diag(&[1.0, 2.0]);
        m.add_ridge(0.5);
        assert_eq!(m[(0, 0)], 1.5);
        assert_eq!(m[(1, 1)], 2.5);
        assert_eq!(m[(0, 1)], 0.0);
        m.add_diag(2.0, &[1.0, 1.0]);
        assert_eq!(m[(0, 0)], 3.5);
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[2.0, 1.0, 4.0, 3.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_wrong_dim_panics() {
        let a = Matrix::zeros(2, 3);
        let _ = a.matvec(&[1.0, 2.0]);
    }
}
