//! Property tests for dataset generators and budget assignment.

use idldp_core::budget::Epsilon;
use idldp_data::budgets::BudgetScheme;
use idldp_data::kosarak::{self, KosarakConfig};
use idldp_data::msnbc::{self, MsnbcConfig};
use idldp_data::retail::{self, RetailConfig};
use idldp_data::synthetic;
use idldp_num::rng::SplitMix64;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Power-law datasets: all items in range, counts sum to n, and the
    /// first item carries the largest share for α > 1.
    #[test]
    fn power_law_invariants(
        n in 200usize..5_000,
        m in 3usize..60,
        alpha in 1.3f64..3.0,
        seed in any::<u64>(),
    ) {
        let ds = synthetic::power_law_with(&mut SplitMix64::new(seed), n, m, alpha);
        prop_assert_eq!(ds.num_users(), n);
        let counts = ds.true_counts();
        prop_assert_eq!(counts.len(), m);
        prop_assert!((counts.iter().sum::<f64>() - n as f64).abs() < 1e-9);
        let max = counts.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert_eq!(counts[0], max, "item 0 must be the mode");
    }

    /// Uniform datasets: every count within 6σ of n/m.
    #[test]
    fn uniform_invariants(
        n in 2_000usize..20_000,
        m in 2usize..40,
        seed in any::<u64>(),
    ) {
        let ds = synthetic::uniform_with(&mut SplitMix64::new(seed), n, m);
        let expect = n as f64 / m as f64;
        let sd = (n as f64 * (1.0 / m as f64) * (1.0 - 1.0 / m as f64)).sqrt();
        for (i, &c) in ds.true_counts().iter().enumerate() {
            prop_assert!(
                (c - expect).abs() < 6.0 * sd + 1.0,
                "item {i}: {c} vs {expect}"
            );
        }
    }

    /// Surrogate set generators: sets are deduplicated, in-domain, and
    /// size-capped.
    #[test]
    fn surrogate_set_invariants(seed in any::<u64>(), which in 0usize..3) {
        let ds = match which {
            0 => kosarak::generate(&mut SplitMix64::new(seed), &KosarakConfig {
                users: 400, pages: 120, mean_set_size: 5.0,
                zipf_exponent: 1.2, max_set_size: 25,
            }),
            1 => retail::generate(&mut SplitMix64::new(seed), &RetailConfig {
                users: 400, products: 150, mean_basket: 7.0,
                zipf_exponent: 1.1, max_basket: 30,
            }),
            _ => msnbc::generate(&mut SplitMix64::new(seed), &MsnbcConfig {
                users: 400, ..MsnbcConfig::paper()
            }),
        };
        let cap = match which { 0 => 25, 1 => 30, _ => 14 };
        for set in ds.sets() {
            prop_assert!(set.len() <= cap);
            let mut sorted = set.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), set.len(), "duplicate item in set");
            prop_assert!(set.iter().all(|&i| (i as usize) < ds.domain_size()));
        }
        // first_item_view only drops empty sets.
        let nonempty = ds.sets().iter().filter(|s| !s.is_empty()).count();
        prop_assert_eq!(ds.first_item_view().num_users(), nonempty);
    }

    /// Budget assignment: item budgets are always base·multiplier for some
    /// multiplier of the scheme, and min budget equals base when the first
    /// level is populated.
    #[test]
    fn budget_assignment_invariants(
        m in 10usize..2_000,
        base in 0.2f64..3.0,
        seed in any::<u64>(),
    ) {
        let scheme = BudgetScheme::paper_default();
        let levels = scheme
            .assign(m, Epsilon::new(base).unwrap(), &mut SplitMix64::new(seed))
            .unwrap();
        prop_assert_eq!(levels.num_items(), m);
        prop_assert!(levels.num_levels() <= 4);
        for item in 0..m {
            let b = levels.item_budget(item).unwrap().get();
            let multiple = b / base;
            prop_assert!(
                scheme
                    .multipliers()
                    .iter()
                    .any(|&mu| (mu - multiple).abs() < 1e-9),
                "budget {b} is not base x multiplier"
            );
        }
        // Level budgets are strictly ascending after compaction.
        for w in levels.budgets().windows(2) {
            prop_assert!(w[1].get() > w[0].get());
        }
    }

    /// Exponential schemes are valid for any level count >= 2.
    #[test]
    fn exponential_scheme_valid(t in 2usize..30, lo in 0.3f64..1.0, span in 0.5f64..5.0) {
        let s = BudgetScheme::exponential(t, lo, lo + span);
        prop_assert_eq!(s.num_levels(), t);
        prop_assert!((s.weights().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for w in s.weights().windows(2) {
            prop_assert!(w[1] > w[0], "weights must increase with budget");
        }
    }
}
