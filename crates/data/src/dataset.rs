//! Dataset containers: single-item and item-set user data.
//!
//! Items are stored as `u32` (the largest paper domain is 41,270 items;
//! `u32` halves the memory of the ~1M-user surrogates versus `usize`).
//! Both containers expose their users as an
//! [`idldp_core::mechanism::InputBatch`] view ([`SingleItemDataset::input_batch`] /
//! [`ItemSetDataset::input_batch`]), the shape the batch pipeline and the
//! streaming report sources consume.

use idldp_core::mechanism::InputBatch;

/// A dataset where each user holds exactly one item.
#[derive(Clone, Debug, PartialEq)]
pub struct SingleItemDataset {
    items: Vec<u32>,
    m: usize,
}

impl SingleItemDataset {
    /// Wraps raw per-user items over a domain of size `m`.
    ///
    /// # Panics
    /// Panics if any item is outside `0..m`.
    pub fn new(items: Vec<u32>, m: usize) -> Self {
        assert!(
            items.iter().all(|&i| (i as usize) < m),
            "item out of domain"
        );
        Self { items, m }
    }

    /// Number of users `n`.
    pub fn num_users(&self) -> usize {
        self.items.len()
    }

    /// Domain size `m`.
    pub fn domain_size(&self) -> usize {
        self.m
    }

    /// Per-user items.
    pub fn items(&self) -> &[u32] {
        &self.items
    }

    /// The batch view consumed by `SimulationPipeline` and
    /// `SeededReportStream`.
    pub fn input_batch(&self) -> InputBatch<'_> {
        InputBatch::Items(&self.items)
    }

    /// True counts `c*_i` (Eq. 1): the number of users holding each item.
    pub fn true_counts(&self) -> Vec<f64> {
        let mut counts = vec![0.0; self.m];
        for &i in &self.items {
            counts[i as usize] += 1.0;
        }
        counts
    }

    /// Indices of the `k` most frequent items, most frequent first.
    pub fn top_k(&self, k: usize) -> Vec<usize> {
        top_k_of(&self.true_counts(), k)
    }
}

/// A dataset where each user holds a *set* of distinct items.
#[derive(Clone, Debug, PartialEq)]
pub struct ItemSetDataset {
    sets: Vec<Vec<u32>>,
    m: usize,
}

impl ItemSetDataset {
    /// Wraps raw per-user item-sets over a domain of size `m`.
    ///
    /// # Panics
    /// Panics if any item is outside `0..m` or a set contains duplicates.
    pub fn new(sets: Vec<Vec<u32>>, m: usize) -> Self {
        for set in &sets {
            assert!(set.iter().all(|&i| (i as usize) < m), "item out of domain");
            let mut sorted = set.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), set.len(), "sets must not contain duplicates");
        }
        Self { sets, m }
    }

    /// Number of users `n`.
    pub fn num_users(&self) -> usize {
        self.sets.len()
    }

    /// Domain size `m`.
    pub fn domain_size(&self) -> usize {
        self.m
    }

    /// Per-user sets.
    pub fn sets(&self) -> &[Vec<u32>] {
        &self.sets
    }

    /// The batch view consumed by `SimulationPipeline` and
    /// `SeededReportStream`.
    pub fn input_batch(&self) -> InputBatch<'_> {
        InputBatch::Sets(&self.sets)
    }

    /// True counts `c*_i` (Eq. 1): the number of users whose set contains
    /// each item.
    pub fn true_counts(&self) -> Vec<f64> {
        let mut counts = vec![0.0; self.m];
        for set in &self.sets {
            for &i in set {
                counts[i as usize] += 1.0;
            }
        }
        counts
    }

    /// Mean set size.
    pub fn mean_set_size(&self) -> f64 {
        if self.sets.is_empty() {
            return 0.0;
        }
        self.sets.iter().map(Vec::len).sum::<usize>() as f64 / self.sets.len() as f64
    }

    /// Largest set size.
    pub fn max_set_size(&self) -> usize {
        self.sets.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// 90th-percentile set size (the heuristic the PS paper suggests for ℓ).
    pub fn percentile_set_size(&self, q: f64) -> usize {
        if self.sets.is_empty() {
            return 0;
        }
        let mut sizes: Vec<usize> = self.sets.iter().map(Vec::len).collect();
        sizes.sort_unstable();
        let pos = ((sizes.len() - 1) as f64 * q).round() as usize;
        sizes[pos]
    }

    /// Indices of the `k` most frequent items, most frequent first.
    pub fn top_k(&self, k: usize) -> Vec<usize> {
        top_k_of(&self.true_counts(), k)
    }

    /// The single-item view used by the paper for Kosarak in Fig. 4(a):
    /// each user's *first* item (users with empty sets are dropped).
    pub fn first_item_view(&self) -> SingleItemDataset {
        let items: Vec<u32> = self
            .sets
            .iter()
            .filter_map(|s| s.first().copied())
            .collect();
        SingleItemDataset::new(items, self.m)
    }
}

/// Indices of the `k` largest entries, largest first (ties broken by lower
/// index).
fn top_k_of(counts: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..counts.len()).collect();
    idx.sort_by(|&a, &b| counts[b].partial_cmp(&counts[a]).unwrap().then(a.cmp(&b)));
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_item_counts_and_topk() {
        let d = SingleItemDataset::new(vec![0, 1, 1, 2, 1], 4);
        assert_eq!(d.num_users(), 5);
        assert_eq!(d.domain_size(), 4);
        assert_eq!(d.true_counts(), vec![1.0, 3.0, 1.0, 0.0]);
        assert_eq!(d.top_k(2), vec![1, 0]);
        assert_eq!(d.input_batch().len(), 5);
        assert_eq!(
            d.input_batch().kind(),
            idldp_core::mechanism::InputKind::Item
        );
    }

    #[test]
    #[should_panic(expected = "item out of domain")]
    fn single_item_domain_check() {
        let _ = SingleItemDataset::new(vec![0, 5], 3);
    }

    #[test]
    fn itemset_counts() {
        let d = ItemSetDataset::new(vec![vec![0, 1], vec![1], vec![], vec![1, 2]], 3);
        assert_eq!(d.true_counts(), vec![1.0, 3.0, 1.0]);
        assert_eq!(d.mean_set_size(), 5.0 / 4.0);
        assert_eq!(d.max_set_size(), 2);
        assert_eq!(d.top_k(1), vec![1]);
        assert_eq!(d.input_batch().len(), 4);
        assert_eq!(
            d.input_batch().kind(),
            idldp_core::mechanism::InputKind::Set
        );
    }

    #[test]
    #[should_panic(expected = "duplicates")]
    fn itemset_rejects_duplicates() {
        let _ = ItemSetDataset::new(vec![vec![1, 1]], 3);
    }

    #[test]
    fn percentiles() {
        let d = ItemSetDataset::new(
            vec![vec![0], vec![0, 1], vec![0, 1, 2], vec![0, 1, 2, 3]],
            5,
        );
        assert_eq!(d.percentile_set_size(0.0), 1);
        assert_eq!(d.percentile_set_size(1.0), 4);
        assert_eq!(d.percentile_set_size(0.5), 3); // round(1.5)=2 → sizes[2]=3
    }

    #[test]
    fn first_item_view_drops_empty() {
        let d = ItemSetDataset::new(vec![vec![2, 0], vec![], vec![1]], 3);
        let s = d.first_item_view();
        assert_eq!(s.items(), &[2, 1]);
        assert_eq!(s.domain_size(), 3);
    }

    #[test]
    fn topk_tie_break_is_stable() {
        let d = SingleItemDataset::new(vec![0, 1], 3);
        assert_eq!(d.top_k(3), vec![0, 1, 2]);
    }
}
