//! Surrogate for the **Kosarak** click-stream dataset.
//!
//! The real dataset (fimi.uantwerpen.be) is an anonymized click-stream of a
//! Hungarian news portal: ~990k users, 41,270 pages, ~8M click events
//! (mean ≈ 8.1 pages per user). It is not redistributable here, so this
//! module generates a surrogate matching those aggregate statistics:
//!
//! * page popularity follows a Zipf law (exponent ~1.15, typical for web
//!   page popularity), so the frequency-estimation experiments see the same
//!   few-heavy-hitters / long-tail structure;
//! * per-user set sizes follow a geometric law with the published mean,
//!   truncated to a maximum burst size.
//!
//! Fig. 4(a) uses the *single-item view* (each user's first page), which
//! [`crate::dataset::ItemSetDataset::first_item_view`] provides.

use crate::dataset::ItemSetDataset;
use rand::Rng;
use rand_distr::{Distribution, Zipf};

/// Generation parameters for the Kosarak surrogate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KosarakConfig {
    /// Number of users.
    pub users: usize,
    /// Number of distinct pages.
    pub pages: usize,
    /// Mean pages per user (the real dataset has ≈ 8.1).
    pub mean_set_size: f64,
    /// Zipf exponent for page popularity.
    pub zipf_exponent: f64,
    /// Hard cap on a single user's set size.
    pub max_set_size: usize,
}

impl KosarakConfig {
    /// Paper-scale configuration (matches the published statistics).
    pub fn paper() -> Self {
        Self {
            users: 990_002,
            pages: 41_270,
            mean_set_size: 8.1,
            zipf_exponent: 1.15,
            max_set_size: 500,
        }
    }

    /// A reduced configuration preserving the distributional shape:
    /// `frac` scales users and pages (min 1000 users / 100 pages).
    pub fn scaled(frac: f64) -> Self {
        let paper = Self::paper();
        Self {
            users: ((paper.users as f64 * frac) as usize).max(1000),
            pages: ((paper.pages as f64 * frac) as usize).max(100),
            ..paper
        }
    }
}

/// Draws a geometric set size with the given mean, shifted to `>= 1` and
/// truncated at `max`.
pub(crate) fn geometric_size<R: Rng + ?Sized>(rng: &mut R, mean: f64, max: usize) -> usize {
    debug_assert!(mean > 1.0);
    // Size = 1 + Geometric(p) with E[Geometric] = (1-p)/p = mean - 1.
    let p = 1.0 / mean;
    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let g = (u.ln() / (1.0 - p).ln()).floor() as usize;
    (1 + g).min(max)
}

/// Draws `target` *distinct* Zipf-popular items (0-based indices).
///
/// Popular items collide often; we bound the attempts and accept a smaller
/// set when the domain is effectively exhausted (matches real data where
/// heavy users still visit a bounded set of pages).
pub(crate) fn distinct_zipf_items<R: Rng + ?Sized>(
    rng: &mut R,
    zipf: &Zipf<f64>,
    domain: usize,
    target: usize,
) -> Vec<u32> {
    let mut set = Vec::with_capacity(target);
    let mut attempts = 0usize;
    let max_attempts = target * 30 + 50;
    while set.len() < target && attempts < max_attempts {
        attempts += 1;
        let draw = zipf.sample(rng) as usize; // in [1, domain]
        let item = (draw.min(domain) - 1) as u32;
        if !set.contains(&item) {
            set.push(item);
        }
    }
    set
}

/// Generates a Kosarak surrogate.
pub fn generate<R: Rng + ?Sized>(rng: &mut R, config: &KosarakConfig) -> ItemSetDataset {
    let zipf = Zipf::new(config.pages as f64, config.zipf_exponent).expect("valid Zipf parameters");
    let sets = (0..config.users)
        .map(|_| {
            let size = geometric_size(rng, config.mean_set_size, config.max_set_size);
            distinct_zipf_items(rng, &zipf, config.pages, size)
        })
        .collect();
    ItemSetDataset::new(sets, config.pages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use idldp_num::rng::SplitMix64;

    fn small() -> KosarakConfig {
        KosarakConfig {
            users: 20_000,
            pages: 2_000,
            mean_set_size: 8.1,
            zipf_exponent: 1.15,
            max_set_size: 500,
        }
    }

    #[test]
    fn mean_set_size_close_to_target() {
        let mut rng = SplitMix64::new(1);
        let d = generate(&mut rng, &small());
        let mean = d.mean_set_size();
        // Dedup against popular items loses a little mass; allow 20% slack.
        assert!((mean - 8.1).abs() < 1.7, "mean set size {mean}");
    }

    #[test]
    fn popularity_is_zipf_like() {
        let mut rng = SplitMix64::new(2);
        let d = generate(&mut rng, &small());
        let counts = d.true_counts();
        let mut sorted = counts.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        // Head dominates: top page ≫ 20th ≫ 200th.
        assert!(sorted[0] > 3.0 * sorted[19], "head {sorted:?}");
        assert!(sorted[19] > 2.0 * sorted[199]);
        // Long tail exists: plenty of pages seen at least once.
        let touched = counts.iter().filter(|&&c| c > 0.0).count();
        assert!(touched > 1000, "tail coverage {touched}");
    }

    #[test]
    fn determinism_and_domain() {
        let cfg = KosarakConfig {
            users: 500,
            pages: 100,
            ..small()
        };
        let d1 = generate(&mut SplitMix64::new(3), &cfg);
        let d2 = generate(&mut SplitMix64::new(3), &cfg);
        assert_eq!(d1, d2);
        assert_eq!(d1.domain_size(), 100);
        assert_eq!(d1.num_users(), 500);
    }

    #[test]
    fn first_item_view_matches_users() {
        let mut rng = SplitMix64::new(4);
        let d = generate(
            &mut rng,
            &KosarakConfig {
                users: 1000,
                pages: 200,
                ..small()
            },
        );
        let s = d.first_item_view();
        // Every surrogate user has at least one page (sizes >= 1).
        assert_eq!(s.num_users(), 1000);
    }

    #[test]
    fn scaled_config_floor() {
        let c = KosarakConfig::scaled(1e-9);
        assert_eq!(c.users, 1000);
        assert_eq!(c.pages, 100);
        let p = KosarakConfig::paper();
        assert_eq!(p.users, 990_002);
        assert_eq!(p.pages, 41_270);
    }

    #[test]
    fn geometric_size_statistics() {
        let mut rng = SplitMix64::new(5);
        let n = 100_000;
        let mean: f64 = (0..n)
            .map(|_| geometric_size(&mut rng, 8.1, 10_000) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 8.1).abs() < 0.15, "mean {mean}");
        assert!((1..=10_000).contains(&geometric_size(&mut rng, 8.1, 10_000)));
        // Truncation respected.
        for _ in 0..1000 {
            assert!(geometric_size(&mut rng, 50.0, 20) <= 20);
        }
    }
}
