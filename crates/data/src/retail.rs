//! Surrogate for the **Retail** market-basket dataset.
//!
//! The real dataset (fimi.uantwerpen.be) records 88,162 baskets from an
//! anonymous Belgian supermarket over 16,470 distinct products, mean basket
//! size ≈ 10.3 with a long tail (maximum 76). The surrogate matches those
//! statistics with Zipf product popularity (supermarket sales are strongly
//! skewed toward staples) and geometric basket sizes truncated at the
//! published maximum.

use crate::dataset::ItemSetDataset;
use crate::kosarak::{distinct_zipf_items, geometric_size};
use rand::Rng;
use rand_distr::Zipf;

/// Generation parameters for the Retail surrogate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetailConfig {
    /// Number of baskets (users).
    pub users: usize,
    /// Number of distinct products.
    pub products: usize,
    /// Mean basket size (the real dataset has ≈ 10.3).
    pub mean_basket: f64,
    /// Zipf exponent for product popularity.
    pub zipf_exponent: f64,
    /// Hard cap on basket size (the real maximum is 76).
    pub max_basket: usize,
}

impl RetailConfig {
    /// Paper-scale configuration.
    pub fn paper() -> Self {
        Self {
            users: 88_162,
            products: 16_470,
            mean_basket: 10.3,
            zipf_exponent: 1.05,
            max_basket: 76,
        }
    }

    /// A reduced configuration preserving the distributional shape.
    pub fn scaled(frac: f64) -> Self {
        let paper = Self::paper();
        Self {
            users: ((paper.users as f64 * frac) as usize).max(1000),
            products: ((paper.products as f64 * frac) as usize).max(100),
            ..paper
        }
    }
}

/// Generates a Retail surrogate.
pub fn generate<R: Rng + ?Sized>(rng: &mut R, config: &RetailConfig) -> ItemSetDataset {
    let zipf =
        Zipf::new(config.products as f64, config.zipf_exponent).expect("valid Zipf parameters");
    let sets = (0..config.users)
        .map(|_| {
            let size = geometric_size(rng, config.mean_basket, config.max_basket);
            distinct_zipf_items(rng, &zipf, config.products, size)
        })
        .collect();
    ItemSetDataset::new(sets, config.products)
}

#[cfg(test)]
mod tests {
    use super::*;
    use idldp_num::rng::SplitMix64;

    fn small() -> RetailConfig {
        RetailConfig {
            users: 10_000,
            products: 1_500,
            ..RetailConfig::paper()
        }
    }

    #[test]
    fn basket_statistics_match() {
        let mut rng = SplitMix64::new(1);
        let d = generate(&mut rng, &small());
        let mean = d.mean_set_size();
        assert!((mean - 10.3).abs() < 2.0, "mean basket {mean}");
        assert!(d.max_set_size() <= 76);
    }

    #[test]
    fn popularity_skewed() {
        let mut rng = SplitMix64::new(2);
        let d = generate(&mut rng, &small());
        let counts = d.true_counts();
        let mut sorted = counts.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert!(sorted[0] > 2.0 * sorted[49], "top product must dominate");
    }

    #[test]
    fn determinism() {
        let cfg = RetailConfig {
            users: 300,
            products: 120,
            ..RetailConfig::paper()
        };
        assert_eq!(
            generate(&mut SplitMix64::new(9), &cfg),
            generate(&mut SplitMix64::new(9), &cfg)
        );
    }

    #[test]
    fn paper_and_scaled_configs() {
        let p = RetailConfig::paper();
        assert_eq!(p.users, 88_162);
        assert_eq!(p.products, 16_470);
        let s = RetailConfig::scaled(0.1);
        assert_eq!(s.users, 8_816);
        assert_eq!(s.products, 1_647);
        assert_eq!(s.max_basket, p.max_basket);
    }
}
