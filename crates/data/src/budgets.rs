//! Privacy-budget assignment schemes (Section VII, "The Setting of Privacy
//! Budget").
//!
//! The paper's default: four privacy levels with budgets
//! `{ε, 1.2ε, 2ε, 4ε}` assigned to items at random with distribution
//! `{5%, 5%, 5%, 85%}` (most items are not very sensitive). Fig. 4 varies
//! the distribution (`{10,10,10,70}`, `{25,25,25,25}`) and Fig. 4(b) uses
//! `t = 20` levels with multipliers uniformly spaced in `[1, 4]` and weights
//! exponentially proportional to the budget (`∝ e^{ε_i}`).

use idldp_core::budget::Epsilon;
use idldp_core::error::{Error, Result};
use idldp_core::levels::LevelPartition;
use rand::Rng;

/// A scheme assigning per-item privacy levels at random.
#[derive(Clone, Debug, PartialEq)]
pub struct BudgetScheme {
    /// Budget multipliers per level (budget = multiplier × base ε),
    /// ascending.
    multipliers: Vec<f64>,
    /// Assignment probabilities per level (sum to 1).
    weights: Vec<f64>,
}

impl BudgetScheme {
    /// Builds a scheme from multipliers and weights.
    pub fn new(multipliers: Vec<f64>, weights: Vec<f64>) -> Result<Self> {
        if multipliers.is_empty() {
            return Err(Error::Empty {
                what: "budget multipliers".into(),
            });
        }
        if multipliers.len() != weights.len() {
            return Err(Error::DimensionMismatch {
                what: "multipliers vs weights".into(),
                expected: multipliers.len(),
                actual: weights.len(),
            });
        }
        if multipliers.iter().any(|&m| m <= 0.0 || !m.is_finite()) {
            return Err(Error::InvalidEpsilon { value: f64::NAN });
        }
        if multipliers.windows(2).any(|w| w[1] <= w[0]) {
            return Err(Error::ParameterOrdering {
                detail: "multipliers must be strictly ascending".into(),
            });
        }
        let total: f64 = weights.iter().sum();
        if weights.iter().any(|&w| w < 0.0) || (total - 1.0).abs() > 1e-9 {
            return Err(Error::InvalidProbability {
                name: "weights".into(),
                value: total,
            });
        }
        Ok(Self {
            multipliers,
            weights,
        })
    }

    /// The paper's default: `{1, 1.2, 2, 4}×ε` with `{5, 5, 5, 85}%`.
    pub fn paper_default() -> Self {
        Self::new(vec![1.0, 1.2, 2.0, 4.0], vec![0.05, 0.05, 0.05, 0.85])
            .expect("static parameters are valid")
    }

    /// The default multipliers with custom weights (Fig. 4(a)'s
    /// `{10,10,10,70}` and `{25,25,25,25}` variants — pass fractions).
    pub fn with_weights(weights: [f64; 4]) -> Result<Self> {
        Self::new(vec![1.0, 1.2, 2.0, 4.0], weights.to_vec())
    }

    /// Fig. 4(b)'s 20-level variant: multipliers uniformly spaced in
    /// `[1, 4]`, weights `∝ e^{multiplier}` (exponentially favouring less
    /// sensitive items).
    pub fn exponential_20() -> Self {
        Self::exponential(20, 1.0, 4.0)
    }

    /// General exponential scheme over `t` levels spanning
    /// `[lo_mult, hi_mult]`.
    pub fn exponential(t: usize, lo_mult: f64, hi_mult: f64) -> Self {
        assert!(t >= 2 && hi_mult > lo_mult && lo_mult > 0.0);
        let multipliers: Vec<f64> = (0..t)
            .map(|i| lo_mult + (hi_mult - lo_mult) * i as f64 / (t - 1) as f64)
            .collect();
        let raw: Vec<f64> = multipliers.iter().map(|&m| m.exp()).collect();
        let total: f64 = raw.iter().sum();
        let weights = raw.into_iter().map(|w| w / total).collect();
        Self::new(multipliers, weights).expect("constructed parameters are valid")
    }

    /// Number of levels in the scheme.
    pub fn num_levels(&self) -> usize {
        self.multipliers.len()
    }

    /// The multipliers.
    pub fn multipliers(&self) -> &[f64] {
        &self.multipliers
    }

    /// The weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Randomly assigns levels to `m` items at base budget `base_eps`.
    ///
    /// Levels that happen to receive no items are dropped (with their items
    /// remapped), since [`LevelPartition`] requires non-empty levels.
    pub fn assign<R: Rng + ?Sized>(
        &self,
        m: usize,
        base_eps: Epsilon,
        rng: &mut R,
    ) -> Result<LevelPartition> {
        if m == 0 {
            return Err(Error::Empty {
                what: "item domain".into(),
            });
        }
        // Cumulative weights for inverse-CDF assignment.
        let mut cdf = Vec::with_capacity(self.weights.len());
        let mut acc = 0.0;
        for &w in &self.weights {
            acc += w;
            cdf.push(acc);
        }
        let mut raw_levels = Vec::with_capacity(m);
        for _ in 0..m {
            let u: f64 = rng.random();
            let lvl = cdf.partition_point(|&c| c < u).min(self.weights.len() - 1);
            raw_levels.push(lvl);
        }
        // Compact away empty levels.
        let mut used: Vec<bool> = vec![false; self.multipliers.len()];
        for &l in &raw_levels {
            used[l] = true;
        }
        let mut remap = vec![usize::MAX; self.multipliers.len()];
        let mut budgets = Vec::new();
        for (old, &u) in used.iter().enumerate() {
            if u {
                remap[old] = budgets.len();
                budgets.push(Epsilon::new(self.multipliers[old] * base_eps.get())?);
            }
        }
        let level_of = raw_levels.into_iter().map(|l| remap[l]).collect();
        LevelPartition::new(level_of, budgets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idldp_num::rng::SplitMix64;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn validation() {
        assert!(BudgetScheme::new(vec![], vec![]).is_err());
        assert!(BudgetScheme::new(vec![1.0], vec![0.5, 0.5]).is_err());
        assert!(BudgetScheme::new(vec![1.0, 0.5], vec![0.5, 0.5]).is_err()); // not ascending
        assert!(BudgetScheme::new(vec![1.0, 2.0], vec![0.6, 0.6]).is_err()); // sum != 1
        assert!(BudgetScheme::new(vec![1.0, 2.0], vec![0.5, 0.5]).is_ok());
    }

    #[test]
    fn paper_default_shape() {
        let s = BudgetScheme::paper_default();
        assert_eq!(s.num_levels(), 4);
        assert_eq!(s.multipliers(), &[1.0, 1.2, 2.0, 4.0]);
        assert!((s.weights().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn assignment_distribution_matches_weights() {
        let s = BudgetScheme::paper_default();
        let mut rng = SplitMix64::new(1);
        let m = 100_000;
        let levels = s.assign(m, eps(1.0), &mut rng).unwrap();
        assert_eq!(levels.num_items(), m);
        assert_eq!(levels.num_levels(), 4);
        let fracs: Vec<f64> = levels
            .counts()
            .iter()
            .map(|&c| c as f64 / m as f64)
            .collect();
        for (got, want) in fracs.iter().zip(s.weights()) {
            assert!((got - want).abs() < 0.01, "fracs {fracs:?}");
        }
        // Budgets are multiplier × base.
        assert!((levels.level_budget(3).unwrap().get() - 4.0).abs() < 1e-12);
        assert!((levels.min_budget().get() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_levels_are_compacted() {
        // Extreme weights: with m=3 draws, some of the 4 levels will very
        // likely be empty; the partition must still be valid.
        let s = BudgetScheme::paper_default();
        let mut rng = SplitMix64::new(2);
        let levels = s.assign(3, eps(1.0), &mut rng).unwrap();
        assert!(levels.num_levels() >= 1);
        assert!(levels.counts().iter().all(|&c| c > 0));
    }

    #[test]
    fn exponential_scheme() {
        let s = BudgetScheme::exponential_20();
        assert_eq!(s.num_levels(), 20);
        assert_eq!(s.multipliers()[0], 1.0);
        assert_eq!(s.multipliers()[19], 4.0);
        // Weights increase with the multiplier (∝ e^mult).
        for w in s.weights().windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!((s.weights().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn custom_weight_variants() {
        for w in [[0.10, 0.10, 0.10, 0.70], [0.25, 0.25, 0.25, 0.25]] {
            let s = BudgetScheme::with_weights(w).unwrap();
            assert_eq!(s.num_levels(), 4);
        }
        assert!(BudgetScheme::with_weights([0.5, 0.5, 0.5, 0.5]).is_err());
    }

    #[test]
    fn deterministic_assignment() {
        let s = BudgetScheme::paper_default();
        let l1 = s.assign(1000, eps(2.0), &mut SplitMix64::new(7)).unwrap();
        let l2 = s.assign(1000, eps(2.0), &mut SplitMix64::new(7)).unwrap();
        assert_eq!(l1, l2);
    }
}
