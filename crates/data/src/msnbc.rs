//! Surrogate for the **MSNBC.com** anonymous web-data dataset.
//!
//! The real dataset (UCI ML repository) records page-*category* visit
//! sequences for ~990k users over just 14 categories, mean 5.7 visits per
//! user, where the same category may appear many times — producing
//! "extremely uneven sequence length" (the paper's words). After
//! deduplication into item-sets, most users hold very few distinct
//! categories, stressing the Padding-and-Sampling protocol at small ℓ.
//!
//! The surrogate draws a geometric sequence length (mean 5.7), then i.i.d.
//! categories from a skewed popularity law (frontpage-style dominance), and
//! deduplicates — reproducing both the tiny domain and the uneven |x|.

use crate::dataset::ItemSetDataset;
use rand::Rng;

/// Generation parameters for the MSNBC surrogate.
#[derive(Clone, Debug, PartialEq)]
pub struct MsnbcConfig {
    /// Number of users.
    pub users: usize,
    /// Number of page categories (the real dataset has 14).
    pub categories: usize,
    /// Mean *visits* per user before deduplication (the real mean is 5.7).
    pub mean_visits: f64,
    /// Category popularity exponent (`weight ∝ 1/rank^s`).
    pub popularity_exponent: f64,
    /// Hard cap on a user's visit count (the real data has sessions in the
    /// thousands; the cap keeps surrogate generation bounded).
    pub max_visits: usize,
}

impl MsnbcConfig {
    /// Paper-scale configuration.
    pub fn paper() -> Self {
        Self {
            users: 989_818,
            categories: 14,
            mean_visits: 5.7,
            popularity_exponent: 1.3,
            max_visits: 2000,
        }
    }

    /// A reduced configuration (categories stay at 14 — the tiny domain is
    /// the point of this dataset).
    pub fn scaled(frac: f64) -> Self {
        let paper = Self::paper();
        Self {
            users: ((paper.users as f64 * frac) as usize).max(1000),
            ..paper
        }
    }
}

/// Cumulative popularity weights `∝ 1/rank^s` over the categories.
fn popularity_cdf(categories: usize, s: f64) -> Vec<f64> {
    let weights: Vec<f64> = (1..=categories).map(|r| (r as f64).powf(-s)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

/// Generates an MSNBC surrogate.
pub fn generate<R: Rng + ?Sized>(rng: &mut R, config: &MsnbcConfig) -> ItemSetDataset {
    assert!(config.categories >= 2, "need at least two categories");
    let cdf = popularity_cdf(config.categories, config.popularity_exponent);
    let sets = (0..config.users)
        .map(|_| {
            let visits = crate::kosarak::geometric_size(rng, config.mean_visits, config.max_visits);
            let mut seen = vec![false; config.categories];
            for _ in 0..visits {
                let u: f64 = rng.random();
                let cat = cdf.partition_point(|&c| c < u).min(config.categories - 1);
                seen[cat] = true;
            }
            seen.iter()
                .enumerate()
                .filter_map(|(c, &s)| s.then_some(c as u32))
                .collect::<Vec<u32>>()
        })
        .collect();
    ItemSetDataset::new(sets, config.categories)
}

#[cfg(test)]
mod tests {
    use super::*;
    use idldp_num::rng::SplitMix64;

    fn small() -> MsnbcConfig {
        MsnbcConfig {
            users: 30_000,
            ..MsnbcConfig::paper()
        }
    }

    #[test]
    fn sets_are_deduplicated_and_small_domain() {
        let mut rng = SplitMix64::new(1);
        let d = generate(&mut rng, &small());
        assert_eq!(d.domain_size(), 14);
        assert!(d.max_set_size() <= 14);
        // Mean distinct categories is well below mean visits (repeats).
        let mean = d.mean_set_size();
        assert!(mean < 5.7, "dedup must shrink: mean {mean}");
        assert!(mean > 1.0);
    }

    #[test]
    fn frontpage_dominates() {
        let mut rng = SplitMix64::new(2);
        let d = generate(&mut rng, &small());
        let counts = d.true_counts();
        // Category 0 is the most popular and clearly dominates the last.
        let max = counts.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(counts[0], max);
        assert!(counts[0] > 3.0 * counts[13], "counts {counts:?}");
    }

    #[test]
    fn uneven_set_sizes() {
        let mut rng = SplitMix64::new(3);
        let d = generate(&mut rng, &small());
        // Both singletons and large sets must occur.
        let sizes: Vec<usize> = d.sets().iter().map(Vec::len).collect();
        assert!(sizes.contains(&1));
        assert!(sizes.iter().any(|&s| s >= 6));
    }

    #[test]
    fn popularity_cdf_is_monotone_to_one() {
        let cdf = popularity_cdf(14, 1.3);
        assert_eq!(cdf.len(), 14);
        for w in cdf.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!((cdf[13] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn determinism() {
        let cfg = MsnbcConfig {
            users: 500,
            ..MsnbcConfig::paper()
        };
        assert_eq!(
            generate(&mut SplitMix64::new(4), &cfg),
            generate(&mut SplitMix64::new(4), &cfg)
        );
    }
}
