//! The paper's synthetic single-item datasets (Section VII, "Datasets").
//!
//! * **Power-law**: n = 100,000 users, m = 100 items; each raw value is a
//!   power-law draw with exponent α = 2, scaled and rounded into
//!   `{1, …, m}` — implemented via inverse-CDF sampling of the continuous
//!   Pareto-like density `p(x) ∝ x^{−α}` on `[1, m+1)`, then floored.
//! * **Uniform**: n = 100,000 users, m = 1000 items, uniform draws.

use crate::dataset::SingleItemDataset;
use rand::Rng;

/// Paper-scale defaults for the power-law dataset.
pub const POWER_LAW_USERS: usize = 100_000;
/// Paper-scale domain size for the power-law dataset.
pub const POWER_LAW_DOMAIN: usize = 100;
/// The paper's power-law exponent α.
pub const POWER_LAW_ALPHA: f64 = 2.0;
/// Paper-scale defaults for the uniform dataset.
pub const UNIFORM_USERS: usize = 100_000;
/// Paper-scale domain size for the uniform dataset.
pub const UNIFORM_DOMAIN: usize = 1000;

/// One inverse-CDF draw from the truncated continuous power law
/// `p(x) ∝ x^{−α}` on `[1, hi)`, `α > 1`.
fn power_law_draw<R: Rng + ?Sized>(rng: &mut R, alpha: f64, hi: f64) -> f64 {
    debug_assert!(alpha > 1.0 && hi > 1.0);
    let u: f64 = rng.random();
    // CDF⁻¹ for truncated Pareto on [1, hi): x = (1 − u(1 − hi^{1−α}))^{1/(1−α)}
    let one_minus_alpha = 1.0 - alpha;
    (1.0 - u * (1.0 - hi.powf(one_minus_alpha))).powf(1.0 / one_minus_alpha)
}

/// Generates the power-law dataset with explicit size parameters.
pub fn power_law_with<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    m: usize,
    alpha: f64,
) -> SingleItemDataset {
    assert!(m >= 2, "domain must have at least two items");
    let items = (0..n)
        .map(|_| {
            let x = power_law_draw(rng, alpha, (m + 1) as f64);
            // Floor into {1..m} then shift to 0-based indices.
            ((x.floor() as usize).clamp(1, m) - 1) as u32
        })
        .collect();
    SingleItemDataset::new(items, m)
}

/// Generates the paper-scale power-law dataset (n = 100k, m = 100, α = 2).
pub fn power_law<R: Rng + ?Sized>(rng: &mut R) -> SingleItemDataset {
    power_law_with(rng, POWER_LAW_USERS, POWER_LAW_DOMAIN, POWER_LAW_ALPHA)
}

/// Generates a uniform dataset with explicit size parameters.
pub fn uniform_with<R: Rng + ?Sized>(rng: &mut R, n: usize, m: usize) -> SingleItemDataset {
    assert!(m >= 1, "domain must be non-empty");
    let items = (0..n).map(|_| rng.random_range(0..m) as u32).collect();
    SingleItemDataset::new(items, m)
}

/// Generates the paper-scale uniform dataset (n = 100k, m = 1000).
pub fn uniform<R: Rng + ?Sized>(rng: &mut R) -> SingleItemDataset {
    uniform_with(rng, UNIFORM_USERS, UNIFORM_DOMAIN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use idldp_num::rng::SplitMix64;

    #[test]
    fn power_law_is_heavily_skewed() {
        let mut rng = SplitMix64::new(1);
        let d = power_law_with(&mut rng, 50_000, 100, 2.0);
        let counts = d.true_counts();
        // Item 0 should dominate: P(X ∈ [1,2)) ≈ 1/2 of the mass for α=2.
        let frac0 = counts[0] / d.num_users() as f64;
        assert!((frac0 - 0.5).abs() < 0.02, "item-0 mass {frac0}");
        // Monotone-ish decay: first item ≫ tenth ≫ fiftieth.
        assert!(counts[0] > 5.0 * counts[9]);
        assert!(counts[9] > 2.0 * counts[49]);
        // All items inside the domain.
        assert_eq!(counts.len(), 100);
    }

    #[test]
    fn power_law_alpha_controls_skew() {
        let mut rng = SplitMix64::new(2);
        let steep = power_law_with(&mut rng, 20_000, 50, 3.0);
        let shallow = power_law_with(&mut rng, 20_000, 50, 1.5);
        let f_steep = steep.true_counts()[0] / 20_000.0;
        let f_shallow = shallow.true_counts()[0] / 20_000.0;
        assert!(f_steep > f_shallow, "steeper α must concentrate more mass");
    }

    #[test]
    fn uniform_is_flat() {
        let mut rng = SplitMix64::new(3);
        let d = uniform_with(&mut rng, 100_000, 50);
        let counts = d.true_counts();
        let expect = 100_000.0 / 50.0;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c - expect).abs() < 6.0 * expect.sqrt(),
                "item {i}: count {c} vs {expect}"
            );
        }
    }

    #[test]
    fn determinism_under_seed() {
        let d1 = power_law_with(&mut SplitMix64::new(7), 1000, 20, 2.0);
        let d2 = power_law_with(&mut SplitMix64::new(7), 1000, 20, 2.0);
        assert_eq!(d1, d2);
        let d3 = power_law_with(&mut SplitMix64::new(8), 1000, 20, 2.0);
        assert_ne!(d1, d3);
    }

    #[test]
    fn paper_scale_constructors() {
        let mut rng = SplitMix64::new(4);
        let p = power_law(&mut rng);
        assert_eq!(p.num_users(), POWER_LAW_USERS);
        assert_eq!(p.domain_size(), POWER_LAW_DOMAIN);
        let u = uniform(&mut rng);
        assert_eq!(u.num_users(), UNIFORM_USERS);
        assert_eq!(u.domain_size(), UNIFORM_DOMAIN);
    }
}
