//! # `idldp-data` — datasets and budget assignment for the experiments
//!
//! The paper evaluates on two synthetic single-item datasets and three real
//! item-set datasets. The synthetic ones ([`synthetic`]) are regenerated
//! exactly as described (power-law with exponent α = 2 over m = 100 items,
//! uniform over m = 1000; n = 100,000 users each).
//!
//! The real datasets (Kosarak, Retail, MSNBC) are not redistributable /
//! downloadable in this environment, so [`kosarak`], [`retail`] and
//! [`msnbc`] provide *surrogate generators* that match the published
//! aggregate statistics (user counts, domain sizes, mean set sizes) and the
//! qualitative shape (Zipf-like item popularity, long-tailed set sizes) —
//! see DESIGN.md §4 for the substitution rationale. All generators are
//! seeded and deterministic.
//!
//! [`budgets`] implements the paper's privacy-budget assignment: four levels
//! `{ε, 1.2ε, 2ε, 4ε}` with a configurable distribution (default
//! `{5%, 5%, 5%, 85%}`), plus the 20-level exponential variant used in
//! Fig. 4(b).

pub mod budgets;
pub mod dataset;
pub mod kosarak;
pub mod msnbc;
pub mod retail;
pub mod synthetic;

pub use budgets::BudgetScheme;
pub use dataset::{ItemSetDataset, SingleItemDataset};
