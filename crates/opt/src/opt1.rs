//! `opt1` — the RAPPOR-structured convex model (Eq. 12).
//!
//! Adding `a_i + b_i = 1` and substituting `a_i = e^{τ_i}/(e^{τ_i}+1)` turns
//! the worst-case objective into `f(τ) = Σ m_i e^{τ_i}/(e^{τ_i}−1)²` (the
//! linear term vanishes) and the Eq. 7 constraints into the *linear* system
//! `τ_i + τ_j <= r(ε_i, ε_j)` with `τ > 0`. The objective is separable with
//! positive-definite (diagonal) Hessian, so the problem is convex and the
//! log-barrier Newton solver from `idldp-num` applies directly.

use crate::solver::SolveError;
use idldp_num::barrier::{BarrierOptions, BarrierSolver, LinearConstraints, SmoothObjective};
use idldp_num::matrix::Matrix;

/// Small strictly positive lower bound keeping τ away from the singular
/// point τ = 0 (where the objective diverges anyway).
const TAU_FLOOR: f64 = 1e-6;

/// The separable Eq. 12 objective `Σ m_i e^{τ_i}/(e^{τ_i}−1)²`.
pub(crate) struct Opt1Objective {
    counts: Vec<f64>,
}

impl SmoothObjective for Opt1Objective {
    fn dim(&self) -> usize {
        self.counts.len()
    }

    fn value(&self, x: &[f64]) -> f64 {
        let mut total = 0.0;
        for (&tau, &m) in x.iter().zip(&self.counts) {
            if tau <= 0.0 {
                return f64::INFINITY;
            }
            let u = tau.exp();
            total += m * u / ((u - 1.0) * (u - 1.0));
        }
        total
    }

    fn gradient(&self, x: &[f64], grad: &mut [f64]) {
        for ((g, &tau), &m) in grad.iter_mut().zip(x).zip(&self.counts) {
            let u = tau.exp();
            // d/dτ [u/(u−1)²] = −u(u+1)/(u−1)³
            *g = -m * u * (u + 1.0) / (u - 1.0).powi(3);
        }
    }

    fn hessian(&self, x: &[f64], hess: &mut Matrix) {
        for (i, (&tau, &m)) in x.iter().zip(&self.counts).enumerate() {
            let u = tau.exp();
            // d²/dτ² [u/(u−1)²] = u(u² + 4u + 1)/(u−1)⁴
            hess[(i, i)] = m * u * (u * u + 4.0 * u + 1.0) / (u - 1.0).powi(4);
        }
    }
}

/// Builds the linear constraint system `τ_i + τ_j <= r_ij` (unordered pairs,
/// including `i = j` ⇒ `2τ_i <= ε_i`) plus `τ_i >= TAU_FLOOR`.
pub(crate) fn build_constraints(rmat: &[Vec<f64>]) -> LinearConstraints {
    let t = rmat.len();
    let mut cons = LinearConstraints::new(t);
    for i in 0..t {
        for j in i..t {
            if !rmat[i][j].is_finite() {
                continue; // unprotected pair (incomplete policy graph)
            }
            let mut row = vec![0.0; t];
            row[i] += 1.0;
            row[j] += 1.0;
            cons.push(&row, rmat[i][j]);
        }
    }
    for i in 0..t {
        let mut row = vec![0.0; t];
        row[i] = -1.0;
        cons.push(&row, -TAU_FLOOR);
    }
    cons
}

/// A strictly feasible starting point: `τ_i = 0.45 · min_j r_ij`.
///
/// Feasibility: `τ_i + τ_j = 0.45(min_k r_ik + min_k r_jk) <= 0.9 r_ij`,
/// since each min is at most `r_ij` by symmetry of `r`.
pub(crate) fn feasible_start(rmat: &[Vec<f64>]) -> Vec<f64> {
    rmat.iter()
        .map(|row| {
            // Only finite (protected) pairs constrain τ; the diagonal
            // r_ii = ε_i is always finite, so the min is well-defined.
            let rmin = row
                .iter()
                .copied()
                .filter(|v| v.is_finite())
                .fold(f64::INFINITY, f64::min);
            (0.45 * rmin).max(2.0 * TAU_FLOOR)
        })
        .collect()
}

/// Solves Eq. 12: returns the optimal `τ` vector.
///
/// `rmat` is the symmetric `t × t` matrix of pairwise budgets and `counts`
/// the per-level item counts `m_i`.
pub fn solve_taus(rmat: &[Vec<f64>], counts: &[usize]) -> Result<Vec<f64>, SolveError> {
    let t = rmat.len();
    if t == 0 || counts.len() != t {
        return Err(SolveError::BadInput(format!(
            "rmat is {t}x{t} but counts has length {}",
            counts.len()
        )));
    }
    let objective = Opt1Objective {
        counts: counts.iter().map(|&c| c as f64).collect(),
    };
    let constraints = build_constraints(rmat);
    let start = feasible_start(rmat);
    let solver = BarrierSolver::new(&objective, &constraints, BarrierOptions::default());
    let result = solver
        .solve(&start)
        .map_err(|e| SolveError::Numerical(e.to_string()))?;
    Ok(result.x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_rmat(eps: f64, t: usize) -> Vec<Vec<f64>> {
        vec![vec![eps; t]; t]
    }

    #[test]
    fn single_level_recovers_rappor() {
        // With one level the binding constraint is 2τ <= ε, and the
        // objective is decreasing, so τ* = ε/2 — exactly basic RAPPOR.
        let eps = 2.0;
        let taus = solve_taus(&uniform_rmat(eps, 1), &[10]).unwrap();
        assert!((taus[0] - eps / 2.0).abs() < 1e-4, "τ={taus:?}");
    }

    #[test]
    fn uniform_levels_recover_rappor_each() {
        let eps = 1.0;
        let taus = solve_taus(&uniform_rmat(eps, 3), &[5, 5, 5]).unwrap();
        for &tau in &taus {
            assert!((tau - eps / 2.0).abs() < 1e-4, "τ={taus:?}");
        }
    }

    #[test]
    fn skewed_budgets_give_larger_tau_to_looser_level() {
        // ε = (1, 4): constraints 2τ₀<=1, τ₀+τ₁<=1, 2τ₁<=4.
        let rmat = vec![vec![1.0, 1.0], vec![1.0, 4.0]];
        let taus = solve_taus(&rmat, &[1, 9]).unwrap();
        assert!(taus[1] > taus[0], "τ={taus:?}");
        // All constraints hold.
        assert!(2.0 * taus[0] <= 1.0 + 1e-6);
        assert!(taus[0] + taus[1] <= 1.0 + 1e-6);
        assert!(2.0 * taus[1] <= 4.0 + 1e-6);
        // The coupling constraint τ₀+τ₁ <= 1 should be (near-)active: the
        // objective decreases in each τ.
        assert!(taus[0] + taus[1] > 1.0 - 1e-3, "τ={taus:?}");
    }

    #[test]
    fn many_items_in_loose_level_pull_budget_there() {
        // With m₁ ≫ m₀ the optimizer should trade τ₀ down to raise τ₁.
        let rmat = vec![vec![1.0, 1.0], vec![1.0, 4.0]];
        let balanced = solve_taus(&rmat, &[5, 5]).unwrap();
        let skewed = solve_taus(&rmat, &[1, 99]).unwrap();
        assert!(
            skewed[1] > balanced[1],
            "balanced={balanced:?} skewed={skewed:?}"
        );
        assert!(skewed[0] < balanced[0]);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let obj = Opt1Objective {
            counts: vec![3.0, 7.0],
        };
        let x = [0.8, 1.7];
        let mut grad = [0.0; 2];
        obj.gradient(&x, &mut grad);
        let h = 1e-6;
        for i in 0..2 {
            let mut xp = x;
            xp[i] += h;
            let mut xm = x;
            xm[i] -= h;
            let fd = (obj.value(&xp) - obj.value(&xm)) / (2.0 * h);
            assert!(
                (grad[i] - fd).abs() < 1e-5,
                "i={i} grad={} fd={fd}",
                grad[i]
            );
        }
    }

    #[test]
    fn hessian_matches_finite_differences() {
        let obj = Opt1Objective {
            counts: vec![2.0, 4.0],
        };
        let x = [0.9, 1.2];
        let mut hess = Matrix::zeros(2, 2);
        obj.hessian(&x, &mut hess);
        let h = 1e-5;
        for i in 0..2 {
            let mut gp = [0.0; 2];
            let mut gm = [0.0; 2];
            let mut xp = x;
            xp[i] += h;
            let mut xm = x;
            xm[i] -= h;
            obj.gradient(&xp, &mut gp);
            obj.gradient(&xm, &mut gm);
            for j in 0..2 {
                let fd = (gp[j] - gm[j]) / (2.0 * h);
                assert!(
                    (hess[(i, j)] - fd).abs() < 1e-4,
                    "H[{i}{j}]={} fd={fd}",
                    hess[(i, j)]
                );
            }
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(solve_taus(&[], &[]).is_err());
        assert!(solve_taus(&uniform_rmat(1.0, 2), &[1]).is_err());
    }

    #[test]
    fn start_point_is_strictly_feasible() {
        for rmat in [
            uniform_rmat(0.3, 4),
            vec![vec![1.0, 1.0], vec![1.0, 8.0]],
            vec![
                vec![0.5, 0.5, 0.5],
                vec![0.5, 2.0, 2.0],
                vec![0.5, 2.0, 6.0],
            ],
        ] {
            let cons = build_constraints(&rmat);
            let x0 = feasible_start(&rmat);
            assert!(cons.is_strictly_feasible(&x0, 0.0), "rmat={rmat:?}");
        }
    }
}
