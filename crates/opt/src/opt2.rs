//! `opt2` — the OUE-structured convex model (Eq. 13).
//!
//! Fixing `a_i = 1/2` turns the worst-case objective into
//! `f(b) = Σ m_i b_i(1−b_i)/(0.5−b_i)² + 1` and the Eq. 7 constraints into
//! the linear system `e^{r(ε_i,ε_j)} b_i + b_j >= 1` over `0 < b_i < 0.5`.
//! Note the constraint is *asymmetric* in `(i, j)`, so both orderings are
//! imposed. Separable convex objective ⇒ log-barrier Newton applies.

use crate::solver::SolveError;
use idldp_num::barrier::{BarrierOptions, BarrierSolver, LinearConstraints, SmoothObjective};
use idldp_num::matrix::Matrix;

/// Keep `b` strictly inside `(B_FLOOR, 0.5 − B_CEIL_MARGIN)`.
const B_FLOOR: f64 = 1e-9;
const B_CEIL_MARGIN: f64 = 1e-9;

/// The separable Eq. 13 objective.
pub(crate) struct Opt2Objective {
    counts: Vec<f64>,
}

impl SmoothObjective for Opt2Objective {
    fn dim(&self) -> usize {
        self.counts.len()
    }

    fn value(&self, x: &[f64]) -> f64 {
        let mut total = 1.0; // the "+1" linear term (a = 1/2 makes it exact)
        for (&b, &m) in x.iter().zip(&self.counts) {
            if b <= 0.0 || b >= 0.5 {
                return f64::INFINITY;
            }
            let d = 0.5 - b;
            total += m * b * (1.0 - b) / (d * d);
        }
        total
    }

    fn gradient(&self, x: &[f64], grad: &mut [f64]) {
        for ((g, &b), &m) in grad.iter_mut().zip(x).zip(&self.counts) {
            let d = 0.5 - b;
            // b(1−b)/(0.5−b)² = 0.25/d² − 1  ⇒  d/db = 0.5/d³.
            *g = 0.5 * m / (d * d * d);
        }
    }

    fn hessian(&self, x: &[f64], hess: &mut Matrix) {
        for (i, (&b, &m)) in x.iter().zip(&self.counts).enumerate() {
            let d = 0.5 - b;
            hess[(i, i)] = 1.5 * m / (d * d * d * d);
        }
    }
}

/// Builds `−e^{r_ij} b_i − b_j <= −1` for every ordered pair (including
/// `i = j`), plus box constraints `B_FLOOR <= b_i <= 0.5 − B_CEIL_MARGIN`.
pub(crate) fn build_constraints(rmat: &[Vec<f64>]) -> LinearConstraints {
    let t = rmat.len();
    let mut cons = LinearConstraints::new(t);
    for i in 0..t {
        for j in 0..t {
            if !rmat[i][j].is_finite() {
                continue; // unprotected pair (incomplete policy graph)
            }
            let mut row = vec![0.0; t];
            row[i] -= rmat[i][j].exp();
            row[j] -= 1.0;
            cons.push(&row, -1.0);
        }
    }
    for i in 0..t {
        let mut lo = vec![0.0; t];
        lo[i] = -1.0;
        cons.push(&lo, -B_FLOOR);
        let mut hi = vec![0.0; t];
        hi[i] = 1.0;
        cons.push(&hi, 0.5 - B_CEIL_MARGIN);
    }
    cons
}

/// Strictly feasible start: the uniform OUE value at the *smallest* pairwise
/// budget, nudged upward. `b_i = b_j = 1/(1+e^{r_min}) + δ` satisfies
/// `e^{r_ij} b_i + b_j >= (e^{r_min}+1)/(e^{r_min}+1) + δ(...) > 1`.
pub(crate) fn feasible_start(rmat: &[Vec<f64>]) -> Vec<f64> {
    let rmin = rmat
        .iter()
        .flatten()
        .copied()
        .filter(|v| v.is_finite())
        .fold(f64::INFINITY, f64::min);
    let base = 1.0 / (1.0 + rmin.exp());
    let delta = ((0.5 - base) / 4.0).clamp(1e-9, 1e-3);
    vec![base + delta; rmat.len()]
}

/// Solves Eq. 13: returns the optimal `b` vector (with `a_i = 1/2` implied).
pub fn solve_bs(rmat: &[Vec<f64>], counts: &[usize]) -> Result<Vec<f64>, SolveError> {
    let t = rmat.len();
    if t == 0 || counts.len() != t {
        return Err(SolveError::BadInput(format!(
            "rmat is {t}x{t} but counts has length {}",
            counts.len()
        )));
    }
    let objective = Opt2Objective {
        counts: counts.iter().map(|&c| c as f64).collect(),
    };
    let constraints = build_constraints(rmat);
    let start = feasible_start(rmat);
    let solver = BarrierSolver::new(&objective, &constraints, BarrierOptions::default());
    let result = solver
        .solve(&start)
        .map_err(|e| SolveError::Numerical(e.to_string()))?;
    Ok(result.x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_rmat(eps: f64, t: usize) -> Vec<Vec<f64>> {
        vec![vec![eps; t]; t]
    }

    #[test]
    fn single_level_recovers_oue() {
        // Objective increasing in b, binding constraint (e^ε + 1) b >= 1 ⇒
        // b* = 1/(e^ε + 1): exactly OUE.
        let eps = 1.5_f64;
        let bs = solve_bs(&uniform_rmat(eps, 1), &[10]).unwrap();
        assert!((bs[0] - 1.0 / (eps.exp() + 1.0)).abs() < 1e-5, "b={bs:?}");
    }

    #[test]
    fn uniform_levels_recover_oue_each() {
        let eps = 2.0_f64;
        let bs = solve_bs(&uniform_rmat(eps, 4), &[3, 3, 3, 3]).unwrap();
        for &b in &bs {
            assert!((b - 1.0 / (eps.exp() + 1.0)).abs() < 1e-5, "b={bs:?}");
        }
    }

    #[test]
    fn sensitive_level_gets_larger_b() {
        // Level 0 (ε=1) needs more noise than level 1 (ε=4).
        let rmat = vec![vec![1.0, 1.0], vec![1.0, 4.0]];
        let bs = solve_bs(&rmat, &[1, 9]).unwrap();
        assert!(bs[0] > bs[1], "b={bs:?}");
        // Every constraint satisfied.
        for i in 0..2 {
            for j in 0..2 {
                assert!(
                    rmat[i][j].exp() * bs[i] + bs[j] >= 1.0 - 1e-6,
                    "pair ({i},{j}) b={bs:?}"
                );
            }
        }
    }

    #[test]
    fn cross_constraints_bind_between_levels() {
        // With very different budgets the binding pair is the cross pair:
        // e^{min ε} b₀ + b₁ >= 1 couples the levels.
        let rmat = vec![vec![1.0, 1.0], vec![1.0, 6.0]];
        let bs = solve_bs(&rmat, &[5, 5]).unwrap();
        let cross = 1.0_f64.exp() * bs[0] + bs[1];
        assert!(
            cross < 1.0 + 1e-3,
            "cross constraint should be near-active: {cross}"
        );
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let obj = Opt2Objective {
            counts: vec![4.0, 6.0],
        };
        let x = [0.2, 0.35];
        let mut grad = [0.0; 2];
        obj.gradient(&x, &mut grad);
        let h = 1e-7;
        for i in 0..2 {
            let mut xp = x;
            xp[i] += h;
            let mut xm = x;
            xm[i] -= h;
            let fd = (obj.value(&xp) - obj.value(&xm)) / (2.0 * h);
            assert!(
                (grad[i] - fd).abs() < 1e-4,
                "i={i} grad={} fd={fd}",
                grad[i]
            );
        }
    }

    #[test]
    fn start_point_is_strictly_feasible() {
        for rmat in [
            uniform_rmat(0.4, 3),
            vec![vec![1.0, 1.0], vec![1.0, 8.0]],
            vec![
                vec![0.7, 0.7, 0.7],
                vec![0.7, 1.4, 1.4],
                vec![0.7, 1.4, 2.8],
            ],
        ] {
            let cons = build_constraints(&rmat);
            let x0 = feasible_start(&rmat);
            assert!(cons.is_strictly_feasible(&x0, 0.0), "rmat={rmat:?}");
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(solve_bs(&[], &[]).is_err());
        assert!(solve_bs(&uniform_rmat(1.0, 2), &[1, 2, 3]).is_err());
    }
}
