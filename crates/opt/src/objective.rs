//! The shared worst-case MSE objective (Eq. 10, per-user scale).
//!
//! `f(a, b) = Σ_i m_i b_i(1−b_i)/(a_i−b_i)² + max_i (1−a_i−b_i)/(a_i−b_i)`
//!
//! This is the quantity all three models are judged by (the scaling constant
//! `n` is omitted, as in the paper). `opt1`/`opt2` optimize restricted
//! parameterizations of it; `opt0` optimizes it directly. Keeping one shared
//! evaluator lets tests assert `opt0 <= min(opt1, opt2)` on the same scale.

use idldp_core::params::LevelParams;

/// Evaluates Eq. 10's objective for per-level parameters and level sizes
/// `m_i`. The `max` term is clamped at 0 (true counts are non-negative, so a
/// negative linear coefficient cannot *increase* the MSE above the pure
/// variance term).
///
/// # Panics
/// Panics if `counts.len()` differs from the number of levels.
pub fn worst_case_objective(params: &LevelParams, counts: &[usize]) -> f64 {
    assert_eq!(
        counts.len(),
        params.num_levels(),
        "counts/levels length mismatch"
    );
    let mut sum = 0.0;
    let mut worst_linear = f64::NEG_INFINITY;
    for i in 0..params.num_levels() {
        let a = params.a()[i];
        let b = params.b()[i];
        let d = a - b;
        sum += counts[i] as f64 * b * (1.0 - b) / (d * d);
        worst_linear = worst_linear.max((1.0 - a - b) / d);
    }
    sum + worst_linear.max(0.0)
}

/// Same objective evaluated on raw `(a, b)` slices without constructing a
/// validated `LevelParams`; returns `f64::INFINITY` outside the domain
/// `0 < b_i < a_i < 1`. This is the inner evaluator for `opt0`'s
/// derivative-free search, which probes infeasible points.
pub fn worst_case_objective_raw(a: &[f64], b: &[f64], counts: &[usize]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), counts.len());
    let mut sum = 0.0;
    let mut worst_linear = f64::NEG_INFINITY;
    for i in 0..a.len() {
        let (ai, bi) = (a[i], b[i]);
        if !(bi > 0.0 && ai > bi && ai < 1.0) {
            return f64::INFINITY;
        }
        let d = ai - bi;
        sum += counts[i] as f64 * bi * (1.0 - bi) / (d * d);
        worst_linear = worst_linear.max((1.0 - ai - bi) / d);
    }
    sum + worst_linear.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validated_and_raw_agree() {
        let p = LevelParams::new(vec![0.5, 0.6], vec![0.2, 0.1]).unwrap();
        let counts = [3usize, 7];
        let v = worst_case_objective(&p, &counts);
        let r = worst_case_objective_raw(p.a(), p.b(), &counts);
        assert!((v - r).abs() < 1e-12);
    }

    #[test]
    fn raw_guards_domain() {
        assert!(worst_case_objective_raw(&[0.5], &[0.5], &[1]).is_infinite());
        assert!(worst_case_objective_raw(&[1.0], &[0.2], &[1]).is_infinite());
        assert!(worst_case_objective_raw(&[0.5], &[0.0], &[1]).is_infinite());
        assert!(worst_case_objective_raw(&[0.5], &[0.2], &[1]).is_finite());
    }

    #[test]
    fn oue_value_matches_known_formula() {
        // For OUE (a=1/2, b=1/(e^ε+1)) with a single level of m items:
        // b(1-b)/(0.5-b)² = 4e^ε/(e^ε−1)², and the linear term is exactly 1.
        let epsv: f64 = 1.3;
        let b = 1.0 / (epsv.exp() + 1.0);
        let p = LevelParams::new(vec![0.5], vec![b]).unwrap();
        let m = 10usize;
        let got = worst_case_objective(&p, &[m]);
        let want = m as f64 * 4.0 * epsv.exp() / (epsv.exp() - 1.0).powi(2) + 1.0;
        assert!((got - want).abs() < 1e-10, "got {got} want {want}");
    }

    #[test]
    fn rappor_linear_term_is_zero() {
        // a + b = 1 ⇒ (1−a−b)/(a−b) = 0: objective is the variance sum only.
        let tau: f64 = 1.2;
        let a = tau.exp() / (tau.exp() + 1.0);
        let p = LevelParams::new(vec![a], vec![1.0 - a]).unwrap();
        let got = worst_case_objective(&p, &[5]);
        let want = 5.0 * tau.exp() / (tau.exp() - 1.0).powi(2);
        assert!((got - want).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn count_mismatch_panics() {
        let p = LevelParams::new(vec![0.5], vec![0.2]).unwrap();
        let _ = worst_case_objective(&p, &[1, 2]);
    }
}
