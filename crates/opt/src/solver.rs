//! The solver facade: pick a model, get feasible [`LevelParams`].
//!
//! [`IdueSolver`] wires a [`Model`] and an [`RFunction`] to a
//! [`LevelPartition`], runs the corresponding optimization, *verifies* the
//! solution against the Eq. 7 constraints, and caches it (experiments solve
//! the same `(levels, model)` instance for every trial; the cache turns that
//! into one solve per sweep point).

use crate::{opt0, opt1, opt2, pair_budget_matrix_with_policy};
use idldp_core::levels::LevelPartition;
use idldp_core::notion::RFunction;
use idldp_core::params::LevelParams;
use idldp_core::policy::PolicyGraph;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Which of the paper's optimization models to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Model {
    /// Eq. 10 — non-convex worst-case model (best utility, slowest).
    Opt0,
    /// Eq. 12 — RAPPOR-structured convex model.
    Opt1,
    /// Eq. 13 — OUE-structured convex model.
    Opt2,
}

impl Model {
    /// Short lowercase name (`"opt0"`, ...), matching the paper's labels.
    pub fn name(self) -> &'static str {
        match self {
            Model::Opt0 => "opt0",
            Model::Opt1 => "opt1",
            Model::Opt2 => "opt2",
        }
    }

    /// All models, in paper order.
    pub const ALL: [Model; 3] = [Model::Opt0, Model::Opt1, Model::Opt2];
}

/// Errors from [`IdueSolver::solve`].
#[derive(Clone, Debug, PartialEq)]
pub enum SolveError {
    /// Structurally invalid inputs (dimension mismatches, empty problems).
    BadInput(String),
    /// The underlying numerical method failed to converge or produced an
    /// invalid point.
    Numerical(String),
    /// The solution failed post-verification against the privacy
    /// constraints (a bug guard; should not occur).
    Infeasible(String),
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::BadInput(m) => write!(f, "bad input: {m}"),
            SolveError::Numerical(m) => write!(f, "numerical failure: {m}"),
            SolveError::Infeasible(m) => write!(f, "infeasible solution: {m}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Cache key: model, r-function, policy mask, and the level structure
/// quantized to 1e-9.
#[derive(Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    model: Model,
    r: &'static str,
    policy: Option<Vec<bool>>,
    budgets_nano: Vec<u64>,
    counts: Vec<usize>,
}

/// Solver facade with per-instance memoization.
///
/// # Examples
/// ```
/// use idldp_core::budget::Epsilon;
/// use idldp_core::levels::LevelPartition;
/// use idldp_core::notion::RFunction;
/// use idldp_opt::{IdueSolver, Model};
///
/// let levels = LevelPartition::new(
///     vec![0, 1, 1, 1],
///     vec![Epsilon::new(1.0).unwrap(), Epsilon::new(4.0).unwrap()],
/// ).unwrap();
/// let params = IdueSolver::new(Model::Opt1).solve(&levels).unwrap();
/// // Solutions are always verified feasible before being returned.
/// assert!(params.verify(&levels, RFunction::Min, 1e-6).is_ok());
/// ```
pub struct IdueSolver {
    model: Model,
    r: RFunction,
    /// Optional incomplete policy graph (Section IV-C); `None` = complete.
    policy: Option<PolicyGraph>,
    /// Post-verification tolerance for accepting a solution.
    verify_tol: f64,
    cache: Mutex<HashMap<CacheKey, LevelParams>>,
}

impl IdueSolver {
    /// Creates a solver for `model` under MinID-LDP (`r = min`).
    pub fn new(model: Model) -> Self {
        Self {
            model,
            r: RFunction::Min,
            policy: None,
            verify_tol: 1e-7,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Overrides the r-function (AvgID-LDP, MaxID-LDP ablations).
    pub fn with_r(mut self, r: RFunction) -> Self {
        self.r = r;
        self
    }

    /// Restricts protection to an incomplete policy graph (Section IV-C):
    /// only the graph's protected level pairs receive Eq. 7 constraints.
    pub fn with_policy(mut self, policy: PolicyGraph) -> Self {
        self.policy = Some(policy);
        self
    }

    /// The model this solver runs.
    pub fn model(&self) -> Model {
        self.model
    }

    /// The notion's r-function.
    pub fn r_function(&self) -> RFunction {
        self.r
    }

    fn cache_key(&self, levels: &LevelPartition) -> CacheKey {
        let t = levels.num_levels();
        CacheKey {
            model: self.model,
            r: self.r.name(),
            policy: self.policy.as_ref().map(|g| {
                (0..t)
                    .flat_map(|i| (0..t).map(move |j| (i, j)))
                    .map(|(i, j)| g.is_protected(i, j))
                    .collect()
            }),
            budgets_nano: levels
                .budgets()
                .iter()
                .map(|e| (e.get() * 1e9).round() as u64)
                .collect(),
            counts: levels.counts().to_vec(),
        }
    }

    /// Solves for the per-level `(a, b)` parameters of `levels`.
    ///
    /// The returned parameters are guaranteed to satisfy the Eq. 7
    /// constraints for this solver's r-function (within `1e-7` slack, the
    /// post-verification tolerance).
    pub fn solve(&self, levels: &LevelPartition) -> Result<LevelParams, SolveError> {
        let policy = match &self.policy {
            Some(g) => {
                if g.num_levels() != levels.num_levels() {
                    return Err(SolveError::BadInput(format!(
                        "policy graph has {} levels, partition has {}",
                        g.num_levels(),
                        levels.num_levels()
                    )));
                }
                g.clone()
            }
            None => PolicyGraph::complete(levels.num_levels()).expect("partition is non-empty"),
        };
        let key = self.cache_key(levels);
        if let Some(hit) = self.cache.lock().get(&key) {
            return Ok(hit.clone());
        }
        let rmat = pair_budget_matrix_with_policy(levels, self.r, &policy);
        let counts = levels.counts();
        let params = match self.model {
            Model::Opt1 => {
                let taus = opt1::solve_taus(&rmat, counts)?;
                LevelParams::from_rappor_taus(&taus)
                    .map_err(|e| SolveError::Numerical(e.to_string()))?
            }
            Model::Opt2 => {
                let bs = opt2::solve_bs(&rmat, counts)?;
                LevelParams::from_oue_bs(&bs).map_err(|e| SolveError::Numerical(e.to_string()))?
            }
            Model::Opt0 => {
                let (a, b) = opt0::solve_ab(&rmat, counts)?;
                LevelParams::new(a, b).map_err(|e| SolveError::Numerical(e.to_string()))?
            }
        };
        policy
            .verify_params(&params, levels, self.r, self.verify_tol)
            .map_err(|e| SolveError::Infeasible(e.to_string()))?;
        self.cache.lock().insert(key, params.clone());
        Ok(params)
    }

    /// Number of cached solutions (diagnostics).
    pub fn cache_len(&self) -> usize {
        self.cache.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::worst_case_objective;
    use idldp_core::budget::Epsilon;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn two_level() -> LevelPartition {
        LevelPartition::new(vec![0, 1, 1, 1, 1], vec![eps(1.0), eps(4.0)]).unwrap()
    }

    #[test]
    fn all_models_produce_feasible_params() {
        let levels = two_level();
        for model in Model::ALL {
            let solver = IdueSolver::new(model);
            let params = solver.solve(&levels).unwrap();
            assert!(
                params.verify(&levels, RFunction::Min, 1e-6).is_ok(),
                "{model:?}"
            );
        }
    }

    #[test]
    fn opt0_dominates_convex_models() {
        let levels = two_level();
        let counts = levels.counts();
        let v: Vec<f64> = Model::ALL
            .iter()
            .map(|&m| {
                let p = IdueSolver::new(m).solve(&levels).unwrap();
                worst_case_objective(&p, counts)
            })
            .collect();
        assert!(v[0] <= v[1] + 1e-6, "opt0 {} vs opt1 {}", v[0], v[1]);
        assert!(v[0] <= v[2] + 1e-6, "opt0 {} vs opt2 {}", v[0], v[2]);
    }

    #[test]
    fn cache_hits_on_repeat_solves() {
        let levels = two_level();
        let solver = IdueSolver::new(Model::Opt1);
        let p1 = solver.solve(&levels).unwrap();
        assert_eq!(solver.cache_len(), 1);
        let p2 = solver.solve(&levels).unwrap();
        assert_eq!(solver.cache_len(), 1);
        assert_eq!(p1, p2);
    }

    #[test]
    fn distinct_levels_get_distinct_cache_entries() {
        let solver = IdueSolver::new(Model::Opt2);
        let l1 = two_level();
        let l2 = LevelPartition::new(vec![0, 1, 1, 1, 1], vec![eps(1.0), eps(2.0)]).unwrap();
        solver.solve(&l1).unwrap();
        solver.solve(&l2).unwrap();
        assert_eq!(solver.cache_len(), 2);
    }

    #[test]
    fn avg_r_function_is_looser_than_min() {
        // AvgID-LDP permits more leakage per pair, so the solved worst-case
        // objective can only improve (or tie).
        let levels = two_level();
        let counts = levels.counts();
        let p_min = IdueSolver::new(Model::Opt1).solve(&levels).unwrap();
        let p_avg = IdueSolver::new(Model::Opt1)
            .with_r(RFunction::Avg)
            .solve(&levels)
            .unwrap();
        assert!(
            worst_case_objective(&p_avg, counts) <= worst_case_objective(&p_min, counts) + 1e-9
        );
        // And the avg solution must satisfy Avg (it may violate Min).
        assert!(p_avg.verify(&levels, RFunction::Avg, 1e-6).is_ok());
    }

    #[test]
    fn uniform_budgets_reduce_to_ldp_baselines() {
        // Single level at ε: opt1 ≡ RAPPOR, opt2 ≡ OUE.
        let levels = LevelPartition::uniform(8, eps(1.5)).unwrap();
        let p1 = IdueSolver::new(Model::Opt1).solve(&levels).unwrap();
        let a_rap = (0.75_f64).exp() / ((0.75_f64).exp() + 1.0);
        assert!((p1.a()[0] - a_rap).abs() < 1e-4, "a={}", p1.a()[0]);
        let p2 = IdueSolver::new(Model::Opt2).solve(&levels).unwrap();
        assert!((p2.b()[0] - 1.0 / (1.5_f64.exp() + 1.0)).abs() < 1e-4);
    }

    #[test]
    fn incomplete_policy_graph_improves_utility() {
        // Section IV-C: the gain beyond 2·min(E) appears when loose inputs
        // need NOT be indistinguishable from the most-protected inputs.
        // Group policy: sensitive level 0 protected within itself; loose
        // levels 1 and 2 protected between each other — no cross edges to
        // level 0 (Blowfish-style secret pairs).
        let levels =
            LevelPartition::new(vec![0, 1, 1, 2, 2, 2], vec![eps(0.5), eps(2.0), eps(4.0)])
                .unwrap();
        let group = idldp_core::policy::PolicyGraph::from_edges(3, &[(1, 2)]).unwrap();
        let counts = levels.counts();
        let complete = IdueSolver::new(Model::Opt1).solve(&levels).unwrap();
        let sparse = IdueSolver::new(Model::Opt1)
            .with_policy(group.clone())
            .solve(&levels)
            .unwrap();
        let v_complete = worst_case_objective(&complete, counts);
        let v_sparse = worst_case_objective(&sparse, counts);
        assert!(
            v_sparse < v_complete,
            "group policy {v_sparse} must beat complete {v_complete}"
        );
        // The sparse solution still satisfies its own (incomplete) notion.
        assert!(group
            .verify_params(&sparse, &levels, RFunction::Min, 1e-6)
            .is_ok());
        // The unprotected cross pair (0, 2) exceeds Lemma 1's 2·min(E) cap
        // — the paper's >2x gain claim for incomplete graphs.
        let cross = sparse.pair_log_ratio(2, 0).max(sparse.pair_log_ratio(0, 2));
        assert!(
            cross > 2.0 * 0.5 + 1e-6,
            "unprotected pair should exceed 2 min(E): {cross}"
        );
    }

    #[test]
    fn policy_graph_dimension_mismatch_rejected() {
        let levels = two_level();
        let err = IdueSolver::new(Model::Opt1)
            .with_policy(idldp_core::policy::PolicyGraph::complete(3).unwrap())
            .solve(&levels)
            .unwrap_err();
        assert!(matches!(err, SolveError::BadInput(_)));
    }

    #[test]
    fn policy_graphs_cached_separately() {
        let levels = two_level();
        let solver_complete = IdueSolver::new(Model::Opt2);
        let solver_sparse = IdueSolver::new(Model::Opt2)
            .with_policy(idldp_core::policy::PolicyGraph::from_edges(2, &[]).unwrap());
        let p1 = solver_complete.solve(&levels).unwrap();
        let p2 = solver_sparse.solve(&levels).unwrap();
        // Dropping the cross constraint must change (improve) the solution.
        assert_ne!(p1, p2);
    }

    #[test]
    fn twenty_levels_solve_quickly_enough() {
        // t = 20 (the paper's Fig. 4b exponential-level setting) must be
        // tractable for the convex models.
        let budgets: Vec<Epsilon> = (0..20).map(|i| eps(1.0 + 3.0 * i as f64 / 19.0)).collect();
        let level_of: Vec<usize> = (0..200).map(|i| i % 20).collect();
        let levels = LevelPartition::new(level_of, budgets).unwrap();
        for model in [Model::Opt1, Model::Opt2] {
            let p = IdueSolver::new(model).solve(&levels).unwrap();
            assert!(p.verify(&levels, RFunction::Min, 1e-6).is_ok(), "{model:?}");
        }
    }
}
