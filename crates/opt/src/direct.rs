//! Direct perturbation-matrix optimization (Section V-A's "potential
//! solution"), practical for *small* domains.
//!
//! The paper notes one could optimize the full matrix
//! `P[x][y] = Pr(M(x) = y)` directly — `|D|²` variables, `|D|³` privacy
//! constraints — and rejects it for real domains. For *small* `m`, though,
//! the direct problem is tractable and interesting: it bounds how much
//! utility IDUE's unary-encoding structure leaves on the table. This module
//! implements it:
//!
//! * rows are parameterized by softmax logits, so row-stochasticity is
//!   structural and the search is unconstrained apart from the privacy
//!   penalties;
//! * the estimator for a general matrix is `ĉ = (Pᵀ)⁻¹ c` (unbiased since
//!   `E[c] = Pᵀ c*`), computed via the LU substrate;
//! * the objective is the worst-case per-user variance
//!   `max_x tr(A C_x Aᵀ)` with `A = (Pᵀ)⁻¹` and
//!   `C_x = diag(p_x) − p_x p_xᵀ` (the covariance of one user's one-hot
//!   report), so total MSE ≤ n · objective for any data distribution;
//! * Nelder–Mead with a penalty ramp, seeded at GRR(min E), with bisection
//!   repair back into the exactly-feasible region.

use crate::solver::SolveError;
use idldp_core::levels::LevelPartition;
use idldp_core::matrix_mech::PerturbationMatrix;
use idldp_core::notion::{Notion, RFunction};
use idldp_num::lu::Lu;
use idldp_num::matrix::Matrix;
use idldp_num::neldermead::{nelder_mead_restarts, NelderMeadOptions};

/// Maximum domain size the direct search accepts (NM in m² dimensions).
pub const MAX_DIRECT_DOMAIN: usize = 6;

/// Options for [`solve_direct`].
#[derive(Clone, Copy, Debug)]
pub struct DirectOptions {
    /// Nelder–Mead evaluation budget per penalty stage.
    pub max_evals: usize,
    /// Restarts per stage.
    pub restarts: usize,
}

impl Default for DirectOptions {
    fn default() -> Self {
        Self {
            max_evals: 60_000,
            restarts: 6,
        }
    }
}

/// Converts flat logits into a row-stochastic probability matrix via
/// row-wise softmax.
fn softmax_rows(logits: &[f64], m: usize) -> Vec<Vec<f64>> {
    let mut probs = Vec::with_capacity(m);
    for x in 0..m {
        let row = &logits[x * m..(x + 1) * m];
        let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = row.iter().map(|&v| (v - max).exp()).collect();
        let total: f64 = exps.iter().sum();
        probs.push(exps.into_iter().map(|e| e / total).collect());
    }
    probs
}

/// Worst-case per-user estimator variance `max_x tr(A C_x Aᵀ)`, or `+inf`
/// if `Pᵀ` is numerically singular.
pub fn worst_case_unit_variance(probs: &[Vec<f64>]) -> f64 {
    let m = probs.len();
    let mut pt = Matrix::zeros(m, m);
    for x in 0..m {
        for y in 0..m {
            pt[(y, x)] = probs[x][y];
        }
    }
    let Ok(lu) = Lu::factor(&pt) else {
        return f64::INFINITY;
    };
    let a = lu.inverse(); // A = (Pᵀ)⁻¹
    let mut worst = f64::NEG_INFINITY;
    for x in 0..m {
        // tr(A C_x Aᵀ) with C_x = diag(p_x) − p_x p_xᵀ:
        // Σ_i [ Σ_j A_ij² p_xj − (Σ_j A_ij p_xj)² ].
        let mut trace = 0.0;
        for i in 0..m {
            let mut quad = 0.0;
            let mut lin = 0.0;
            for j in 0..m {
                quad += a[(i, j)] * a[(i, j)] * probs[x][j];
                lin += a[(i, j)] * probs[x][j];
            }
            trace += quad - lin * lin;
        }
        worst = worst.max(trace);
    }
    worst
}

/// Privacy-violation penalty: squared positive parts of
/// `ln P[x][y] − ln P[x'][y] − r(ε_x, ε_x')` over all pairs and outputs.
fn privacy_penalty(probs: &[Vec<f64>], rmat: &[Vec<f64>]) -> f64 {
    let m = probs.len();
    let mut penalty = 0.0;
    for x in 0..m {
        for xp in 0..m {
            if x == xp {
                continue;
            }
            let allowed = rmat[x][xp];
            for y in 0..m {
                let v = (probs[x][y] / probs[xp][y]).ln() - allowed;
                if v > 0.0 {
                    penalty += v * v;
                }
            }
        }
    }
    penalty
}

/// Per-item pairwise budgets `r(ε_x, ε_x')` (item granularity, unlike the
/// level-granularity matrix used by the IDUE models).
fn item_budget_matrix(levels: &LevelPartition, r: RFunction) -> Vec<Vec<f64>> {
    let m = levels.num_items();
    (0..m)
        .map(|x| {
            (0..m)
                .map(|xp| {
                    r.combine(
                        levels.item_budget(x).expect("validated"),
                        levels.item_budget(xp).expect("validated"),
                    )
                })
                .collect()
        })
        .collect()
}

/// GRR logits at budget `eps` over `m` categories (the feasible seed).
fn grr_logits(eps: f64, m: usize) -> Vec<f64> {
    let e = eps.exp();
    let denom = e + m as f64 - 1.0;
    let p = (e / denom).ln();
    let q = (1.0 / denom).ln();
    let mut logits = vec![q; m * m];
    for x in 0..m {
        logits[x * m + x] = p;
    }
    logits
}

/// Max privacy violation of a probability matrix against `rmat`.
fn max_violation(probs: &[Vec<f64>], rmat: &[Vec<f64>]) -> f64 {
    let m = probs.len();
    let mut worst = f64::NEG_INFINITY;
    for x in 0..m {
        for xp in 0..m {
            if x == xp {
                continue;
            }
            for y in 0..m {
                worst = worst.max((probs[x][y] / probs[xp][y]).ln() - rmat[x][xp]);
            }
        }
    }
    worst
}

/// Solves the direct matrix problem for a small domain under `r`-ID-LDP.
///
/// Returns a validated, *audited* [`PerturbationMatrix`]. Errors if the
/// domain exceeds [`MAX_DIRECT_DOMAIN`].
pub fn solve_direct(
    levels: &LevelPartition,
    r: RFunction,
    opts: &DirectOptions,
) -> Result<PerturbationMatrix, SolveError> {
    let m = levels.num_items();
    if m < 2 {
        return Err(SolveError::BadInput("direct solve needs m >= 2".into()));
    }
    if m > MAX_DIRECT_DOMAIN {
        return Err(SolveError::BadInput(format!(
            "direct solve limited to m <= {MAX_DIRECT_DOMAIN} (got {m}); use IDUE for large domains"
        )));
    }
    let rmat = item_budget_matrix(levels, r);
    let min_eps = levels.min_budget().get();

    let objective = |logits: &[f64], rho: f64| -> f64 {
        let probs = softmax_rows(logits, m);
        let base = worst_case_unit_variance(&probs);
        if !base.is_finite() {
            return f64::INFINITY;
        }
        base + rho * privacy_penalty(&probs, &rmat)
    };

    let nm_opts = NelderMeadOptions {
        max_evals: opts.max_evals,
        initial_scale: 0.1,
        ..Default::default()
    };
    // Seeds: GRR at min(E) (always feasible) and a slightly flattened copy.
    let seed_a = grr_logits(min_eps, m);
    let seed_b = grr_logits(0.75 * min_eps, m);
    let mut best: Option<(f64, Vec<Vec<f64>>)> = None;
    for seed in [&seed_a, &seed_b] {
        let mut x = seed.clone();
        for rho in [1e2, 1e4, 1e7] {
            let res =
                nelder_mead_restarts(|p| objective(p, rho), &x, &nm_opts, opts.restarts, 1e-9);
            if res.value.is_finite() {
                x = res.x;
            }
        }
        // Repair: blend probabilities toward the GRR(min E) matrix.
        let candidate = softmax_rows(&x, m);
        let anchor = softmax_rows(&seed_a, m);
        let mut accepted: Option<Vec<Vec<f64>>> = None;
        if max_violation(&candidate, &rmat) <= 1e-12 {
            accepted = Some(candidate);
        } else {
            let blend = |s: f64| -> Vec<Vec<f64>> {
                candidate
                    .iter()
                    .zip(&anchor)
                    .map(|(c, g)| {
                        c.iter()
                            .zip(g)
                            .map(|(&cv, &gv)| s * cv + (1.0 - s) * gv)
                            .collect()
                    })
                    .collect()
            };
            let mut lo = 0.0;
            let mut hi = 1.0;
            for _ in 0..60 {
                let mid = 0.5 * (lo + hi);
                if max_violation(&blend(mid), &rmat) <= 1e-12 {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            let p = blend((lo - 1e-9).max(0.0));
            if max_violation(&p, &rmat) <= 1e-12 {
                accepted = Some(p);
            }
        }
        if let Some(probs) = accepted {
            let value = worst_case_unit_variance(&probs);
            if best.as_ref().is_none_or(|(bv, _)| value < *bv) {
                best = Some((value, probs));
            }
        }
    }
    // The GRR seed itself competes directly.
    {
        let probs = softmax_rows(&seed_a, m);
        let value = worst_case_unit_variance(&probs);
        if best.as_ref().is_none_or(|(bv, _)| value < *bv) {
            best = Some((value, probs));
        }
    }

    let (_, probs) =
        best.ok_or_else(|| SolveError::Numerical("no feasible direct-matrix candidate".into()))?;
    let matrix =
        PerturbationMatrix::new(probs).map_err(|e| SolveError::Numerical(e.to_string()))?;
    // Hard post-audit before returning.
    let notion = Notion::IdLdp {
        budgets: levels.item_budget_set(),
        r,
    };
    matrix
        .audit(&notion, 1e-7)
        .map_err(|e| SolveError::Infeasible(e.to_string()))?;
    Ok(matrix)
}

/// Unbiased frequency estimates for a general matrix mechanism:
/// `ĉ = (Pᵀ)⁻¹ c`.
///
/// # Panics
/// Panics if the histogram length differs from the matrix dimension.
pub fn matrix_estimate(p: &PerturbationMatrix, report_histogram: &[u64]) -> Vec<f64> {
    let m = p.num_inputs();
    assert_eq!(report_histogram.len(), m, "histogram length mismatch");
    let mut pt = Matrix::zeros(m, m);
    for x in 0..m {
        for y in 0..m {
            pt[(y, x)] = p.prob(x, y);
        }
    }
    let lu = Lu::factor(&pt).expect("audited mechanisms are invertible");
    let c: Vec<f64> = report_histogram.iter().map(|&v| v as f64).collect();
    lu.solve(&c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use idldp_core::budget::Epsilon;
    use idldp_num::rng::SplitMix64;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn rejects_large_or_trivial_domains() {
        let big = LevelPartition::uniform(10, eps(1.0)).unwrap();
        assert!(solve_direct(&big, RFunction::Min, &DirectOptions::default()).is_err());
        let tiny = LevelPartition::uniform(1, eps(1.0)).unwrap();
        assert!(solve_direct(&tiny, RFunction::Min, &DirectOptions::default()).is_err());
    }

    #[test]
    fn uniform_budgets_not_worse_than_grr() {
        // With uniform budgets GRR is the classic baseline; the direct
        // search starts there, so it must end at or below GRR's objective.
        let levels = LevelPartition::uniform(3, eps(1.0)).unwrap();
        let direct = solve_direct(&levels, RFunction::Min, &DirectOptions::default()).unwrap();
        let grr = PerturbationMatrix::grr(eps(1.0), 3).unwrap();
        let v_direct = worst_case_unit_variance(
            &(0..3)
                .map(|x| (0..3).map(|y| direct.prob(x, y)).collect())
                .collect::<Vec<_>>(),
        );
        let v_grr = worst_case_unit_variance(
            &(0..3)
                .map(|x| (0..3).map(|y| grr.prob(x, y)).collect())
                .collect::<Vec<_>>(),
        );
        assert!(v_direct <= v_grr + 1e-6, "direct {v_direct} vs GRR {v_grr}");
    }

    #[test]
    fn skewed_budgets_beat_grr_at_min() {
        // Items 0 at ε=0.7, items 1..3 at ε=2.8: the direct mechanism can
        // discriminate, GRR cannot.
        let levels = LevelPartition::new(vec![0, 1, 1, 1], vec![eps(0.7), eps(2.8)]).unwrap();
        let direct = solve_direct(&levels, RFunction::Min, &DirectOptions::default()).unwrap();
        let grr = PerturbationMatrix::grr(eps(0.7), 4).unwrap();
        let to_probs = |p: &PerturbationMatrix| {
            (0..4)
                .map(|x| (0..4).map(|y| p.prob(x, y)).collect::<Vec<_>>())
                .collect::<Vec<_>>()
        };
        let v_direct = worst_case_unit_variance(&to_probs(&direct));
        let v_grr = worst_case_unit_variance(&to_probs(&grr));
        assert!(
            v_direct < v_grr,
            "input discrimination must help: direct {v_direct} vs GRR {v_grr}"
        );
        // And the result provably satisfies MinID-LDP over the items.
        let notion = Notion::IdLdp {
            budgets: levels.item_budget_set(),
            r: RFunction::Min,
        };
        assert!(direct.audit(&notion, 1e-6).is_ok());
    }

    #[test]
    fn matrix_estimator_is_unbiased_on_expectation() {
        let levels = LevelPartition::new(vec![0, 1, 1], vec![eps(1.0), eps(3.0)]).unwrap();
        let mech = solve_direct(&levels, RFunction::Min, &DirectOptions::default()).unwrap();
        // Feed the exact expected histogram for a known truth.
        let truth = [500.0, 300.0, 200.0];
        let expected: Vec<u64> = (0..3)
            .map(|y| {
                truth
                    .iter()
                    .enumerate()
                    .map(|(x, &c)| c * mech.prob(x, y))
                    .sum::<f64>()
                    .round() as u64
            })
            .collect();
        let est = matrix_estimate(&mech, &expected);
        for (got, want) in est.iter().zip(&truth) {
            assert!((got - want).abs() < 5.0, "est {est:?} truth {truth:?}");
        }
    }

    #[test]
    fn end_to_end_sampling_recovers_truth() {
        let levels = LevelPartition::uniform(3, eps(2.0)).unwrap();
        let mech = solve_direct(&levels, RFunction::Min, &DirectOptions::default()).unwrap();
        let n = 60_000usize;
        let mut rng = SplitMix64::new(5);
        let mut hist = vec![0u64; 3];
        for i in 0..n {
            let x = i % 3; // uniform truth
            hist[mech.perturb(x, &mut rng).unwrap()] += 1;
        }
        let est = matrix_estimate(&mech, &hist);
        for &e in &est {
            assert!((e - n as f64 / 3.0).abs() < 0.05 * n as f64, "est {est:?}");
        }
    }
}
