//! `opt0` — the worst-case model (Eq. 10), non-convex.
//!
//! Minimizes `Σ m_i b_i(1−b_i)/(a_i−b_i)² + max_i (1−a_i−b_i)/(a_i−b_i)`
//! over all `0 < b_i < a_i < 1` subject to the Eq. 7 ratio constraints
//! `ln(a_i(1−b_j)/(b_i(1−a_j))) <= r(ε_i, ε_j)`. The paper notes the
//! feasible region makes this non-convex, so there is no certified global
//! optimum; we use quadratic-penalty Nelder–Mead with a ramped penalty
//! weight, multi-started from:
//!
//! 1. the `opt1` (RAPPOR-structured) solution,
//! 2. the `opt2` (OUE-structured) solution,
//! 3. uniform OUE and RAPPOR at the smallest pairwise budget.
//!
//! Because seeds 1–2 are feasible points of Eq. 10, the returned solution is
//! *never worse* than the better convex model — the property the paper's
//! Fig. 3 relies on (`opt0 <= min(opt1, opt2)` in worst-case MSE). Every
//! candidate is repaired back into the exactly-feasible region (geometric
//! blend toward a strictly feasible anchor) before comparison.

use crate::objective::worst_case_objective_raw;
use crate::solver::SolveError;
use crate::{opt1, opt2};
use idldp_num::neldermead::{nelder_mead_restarts, NelderMeadOptions};

/// Minimum allowed gap `a_i − b_i` during the search (degenerate gaps blow
/// up the objective anyway; this keeps intermediate arithmetic finite).
const MIN_GAP: f64 = 1e-7;

/// Feasibility slack for accepting a repaired point.
const FEAS_TOL: f64 = 1e-12;

/// Log-ratio violation `max_{i,j} ( ln(a_i(1−b_j)/(b_i(1−a_j))) − r_ij )`,
/// or `+inf` outside the box domain.
fn max_violation(a: &[f64], b: &[f64], rmat: &[Vec<f64>]) -> f64 {
    let t = a.len();
    let mut worst = f64::NEG_INFINITY;
    for i in 0..t {
        if !(b[i] > 0.0 && a[i] > b[i] + MIN_GAP && a[i] < 1.0) {
            return f64::INFINITY;
        }
    }
    for i in 0..t {
        for j in 0..t {
            if !rmat[i][j].is_finite() {
                continue; // unprotected pair (incomplete policy graph)
            }
            let ratio = (a[i] * (1.0 - b[j])) / (b[i] * (1.0 - a[j]));
            worst = worst.max(ratio.ln() - rmat[i][j]);
        }
    }
    worst
}

/// Splits the flat NM vector into `(a, b)` views.
fn split(x: &[f64]) -> (&[f64], &[f64]) {
    let t = x.len() / 2;
    (&x[..t], &x[t..])
}

/// Penalized objective for a given penalty weight.
fn penalized(x: &[f64], counts: &[usize], rmat: &[Vec<f64>], rho: f64) -> f64 {
    let (a, b) = split(x);
    let base = worst_case_objective_raw(a, b, counts);
    if !base.is_finite() {
        return f64::INFINITY;
    }
    let t = a.len();
    let mut penalty = 0.0;
    for i in 0..t {
        if a[i] - b[i] < MIN_GAP {
            return f64::INFINITY;
        }
    }
    for i in 0..t {
        for j in 0..t {
            if !rmat[i][j].is_finite() {
                continue; // unprotected pair (incomplete policy graph)
            }
            let ratio = (a[i] * (1.0 - b[j])) / (b[i] * (1.0 - a[j]));
            let v = ratio.ln() - rmat[i][j];
            if v > 0.0 {
                penalty += v * v;
            }
        }
    }
    base + rho * penalty
}

/// Blends `x` toward the strictly feasible `anchor` until the ratio
/// constraints hold; returns `None` if even the anchor-adjacent end fails
/// (should not happen for a valid anchor).
fn repair_toward(
    x: &[f64],
    anchor: &[f64],
    counts: &[usize],
    rmat: &[Vec<f64>],
) -> Option<Vec<f64>> {
    let feasible = |p: &[f64]| {
        let (a, b) = split(p);
        max_violation(a, b, rmat) <= FEAS_TOL && worst_case_objective_raw(a, b, counts).is_finite()
    };
    if feasible(x) {
        return Some(x.to_vec());
    }
    if !feasible(anchor) {
        return None;
    }
    // Bisect the blend factor s ∈ [0 (anchor), 1 (x)] for the largest
    // feasible point along the segment.
    let mut lo = 0.0; // feasible end
    let mut hi = 1.0; // infeasible end
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        let p = idldp_num::vecops::lerp(anchor, x, mid);
        if feasible(&p) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    // Step slightly inside to absorb round-off.
    let s = (lo - 1e-9).max(0.0);
    let p = idldp_num::vecops::lerp(anchor, x, s);
    feasible(&p).then_some(p)
}

/// Solves Eq. 10 and returns flat `(a, b)` vectors.
pub fn solve_ab(rmat: &[Vec<f64>], counts: &[usize]) -> Result<(Vec<f64>, Vec<f64>), SolveError> {
    let t = rmat.len();
    if t == 0 || counts.len() != t {
        return Err(SolveError::BadInput(format!(
            "rmat is {t}x{t} but counts has length {}",
            counts.len()
        )));
    }

    // Seed 1: opt1 (RAPPOR-structured) — always feasible.
    let taus = opt1::solve_taus(rmat, counts)?;
    let seed_opt1: Vec<f64> = {
        let a: Vec<f64> = taus.iter().map(|&t| t.exp() / (t.exp() + 1.0)).collect();
        let b: Vec<f64> = a.iter().map(|&ai| 1.0 - ai).collect();
        a.into_iter().chain(b).collect()
    };
    // Seed 2: opt2 (OUE-structured) — always feasible.
    let bs = opt2::solve_bs(rmat, counts)?;
    let seed_opt2: Vec<f64> = std::iter::repeat_n(0.5, t)
        .chain(bs.iter().copied())
        .collect();
    // Seeds 3–4: uniform OUE / RAPPOR at the most conservative budget.
    let rmin = rmat.iter().flatten().copied().fold(f64::INFINITY, f64::min);
    let b_oue = 1.0 / (rmin.exp() + 1.0);
    let seed_oue: Vec<f64> = std::iter::repeat_n(0.5, t)
        .chain(std::iter::repeat_n(b_oue, t))
        .collect();
    let a_rap = (rmin / 2.0).exp() / ((rmin / 2.0).exp() + 1.0);
    let seed_rap: Vec<f64> = std::iter::repeat_n(a_rap, t)
        .chain(std::iter::repeat_n(1.0 - a_rap, t))
        .collect();

    // The anchor for feasibility repair: strictly feasible with margin.
    // opt1's solution sits on the boundary, so pull it slightly inward.
    let anchor: Vec<f64> = {
        let taus_in: Vec<f64> = taus.iter().map(|&t| t * 0.98).collect();
        let a: Vec<f64> = taus_in.iter().map(|&t| t.exp() / (t.exp() + 1.0)).collect();
        let b: Vec<f64> = a.iter().map(|&ai| 1.0 - ai).collect();
        a.into_iter().chain(b).collect()
    };

    let nm_opts = NelderMeadOptions {
        max_evals: 40_000,
        initial_scale: 0.02,
        ..Default::default()
    };

    let mut best: Option<(f64, Vec<f64>)> = None;
    for seed in [&seed_opt1, &seed_opt2, &seed_oue, &seed_rap] {
        let mut x = seed.clone();
        // Penalty ramp: loose search first, then enforce feasibility hard.
        for rho in [1e2, 1e4, 1e7] {
            let res =
                nelder_mead_restarts(|p| penalized(p, counts, rmat, rho), &x, &nm_opts, 6, 1e-9);
            if res.value.is_finite() {
                x = res.x;
            }
        }
        let Some(repaired) = repair_toward(&x, &anchor, counts, rmat) else {
            continue;
        };
        let (a, b) = split(&repaired);
        let value = worst_case_objective_raw(a, b, counts);
        if best.as_ref().is_none_or(|(bv, _)| value < *bv) {
            best = Some((value, repaired));
        }
    }

    // The convex seeds are feasible as-is; make sure they compete directly
    // (protects against NM wandering off in pathological cases).
    for seed in [&seed_opt1, &seed_opt2] {
        let (a, b) = split(seed);
        if max_violation(a, b, rmat) <= FEAS_TOL {
            let value = worst_case_objective_raw(a, b, counts);
            if best.as_ref().is_none_or(|(bv, _)| value < *bv) {
                best = Some((value, seed.clone()));
            }
        }
    }

    let (_, x) =
        best.ok_or_else(|| SolveError::Numerical("no feasible opt0 candidate found".into()))?;
    let (a, b) = split(&x);
    Ok((a.to_vec(), b.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_rmat(eps: f64, t: usize) -> Vec<Vec<f64>> {
        vec![vec![eps; t]; t]
    }

    #[test]
    fn feasible_and_not_worse_than_convex_models() {
        let rmat = vec![vec![1.0, 1.0], vec![1.0, 4.0]];
        let counts = [1usize, 9];
        let (a, b) = solve_ab(&rmat, &counts).unwrap();
        assert!(max_violation(&a, &b, &rmat) <= 1e-9, "violation");
        let v0 = worst_case_objective_raw(&a, &b, &counts);

        let taus = opt1::solve_taus(&rmat, &counts).unwrap();
        let a1: Vec<f64> = taus.iter().map(|&t| t.exp() / (t.exp() + 1.0)).collect();
        let b1: Vec<f64> = a1.iter().map(|&x| 1.0 - x).collect();
        let v1 = worst_case_objective_raw(&a1, &b1, &counts);

        let bs = opt2::solve_bs(&rmat, &counts).unwrap();
        let v2 = worst_case_objective_raw(&[0.5; 2], &bs, &counts);

        assert!(v0 <= v1 + 1e-6, "opt0 {v0} must be <= opt1 {v1}");
        assert!(v0 <= v2 + 1e-6, "opt0 {v0} must be <= opt2 {v2}");
    }

    #[test]
    fn single_uniform_level_beats_or_ties_oue() {
        let eps = 1.0_f64;
        let rmat = uniform_rmat(eps, 1);
        let counts = [100usize];
        let (a, b) = solve_ab(&rmat, &counts).unwrap();
        let v0 = worst_case_objective_raw(&a, &b, &counts);
        let b_oue = 1.0 / (eps.exp() + 1.0);
        let v_oue = worst_case_objective_raw(&[0.5], &[b_oue], &counts);
        assert!(v0 <= v_oue + 1e-6, "opt0 {v0} vs OUE {v_oue}");
        assert!(max_violation(&a, &b, &rmat) <= 1e-9);
    }

    #[test]
    fn table2_shape_two_levels() {
        // The paper's toy example: ε = (ln4, ln6), m = (1, 4). The solved
        // IDUE should protect level 0 more (larger flip probability on its
        // bit ⇒ smaller a−b gap) than level 1.
        let rmat = vec![
            vec![4.0_f64.ln(), 4.0_f64.ln()],
            vec![4.0_f64.ln(), 6.0_f64.ln()],
        ];
        let counts = [1usize, 4];
        let (a, b) = solve_ab(&rmat, &counts).unwrap();
        assert!(max_violation(&a, &b, &rmat) <= 1e-9);
        let gap0 = a[0] - b[0];
        let gap1 = a[1] - b[1];
        assert!(
            gap1 > gap0,
            "looser level should have the wider gap: gaps ({gap0}, {gap1})"
        );
        // Worst-case total variance (×n) must beat OUE at ε = ln4, m = 5
        // (Table II: 8.86n vs 9.9n for OUE).
        let v0 = worst_case_objective_raw(&a, &b, &counts);
        let b_oue = 1.0 / 5.0; // 1/(e^{ln4}+1)
        let v_oue = worst_case_objective_raw(&[0.5, 0.5], &[b_oue, b_oue], &counts);
        assert!(v0 < v_oue, "IDUE worst case {v0} must beat OUE {v_oue}");
    }

    #[test]
    fn rejects_bad_input() {
        assert!(solve_ab(&[], &[]).is_err());
        assert!(solve_ab(&uniform_rmat(1.0, 2), &[3]).is_err());
    }

    #[test]
    fn repair_pulls_infeasible_point_inside() {
        let rmat = uniform_rmat(1.0, 1);
        let counts = [5usize];
        // Grossly infeasible: near-deterministic mechanism.
        let x = vec![0.99, 0.01];
        let anchor = vec![0.6, 0.4];
        assert!(max_violation(&[0.6], &[0.4], &rmat) <= 0.0);
        let repaired = repair_toward(&x, &anchor, &counts, &rmat).unwrap();
        let (a, b) = split(&repaired);
        assert!(max_violation(a, b, &rmat) <= FEAS_TOL);
    }
}
