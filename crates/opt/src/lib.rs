//! # `idldp-opt` — optimization models for IDUE perturbation probabilities
//!
//! The IDUE mechanism needs one `(a_i, b_i)` pair per privacy level,
//! minimizing estimation MSE subject to the Eq. 7 privacy constraints. The
//! paper formulates three models (Section V-D):
//!
//! * [`opt0`] — the *worst-case* model (Eq. 10): minimize
//!   `Σ m_i b_i(1−b_i)/(a_i−b_i)² + max_i (1−a_i−b_i)/(a_i−b_i)` over all
//!   `(a, b)` with `a_i(1−b_j)/(b_i(1−a_j)) <= e^{r(ε_i,ε_j)}`. Non-convex;
//!   solved by penalized Nelder–Mead multi-started from the convex models'
//!   solutions, with exact feasibility repair.
//! * [`opt1`] — the RAPPOR-structured model (Eq. 12): `a_i + b_i = 1`
//!   reduces the problem to `min Σ m_i e^{τ_i}/(e^{τ_i}−1)²` with *linear*
//!   constraints `τ_i + τ_j <= r(ε_i, ε_j)`. Convex; solved by the
//!   log-barrier Newton method from `idldp-num`.
//! * [`opt2`] — the OUE-structured model (Eq. 13): `a_i = 1/2` gives
//!   `min Σ m_i b_i(1−b_i)/(0.5−b_i)² + 1` with linear constraints
//!   `e^{r(ε_i,ε_j)} b_i + b_j >= 1`. Also convex, same solver.
//!
//! [`solver::IdueSolver`] is the facade: pick a [`solver::Model`], hand it a
//! [`idldp_core::levels::LevelPartition`], get a validated, *feasible*
//! [`idldp_core::params::LevelParams`] back. Every solution is verified
//! against the privacy constraints before being returned — an infeasible
//! "solution" is a hard error, never silently returned.

pub mod direct;
pub mod objective;
pub mod opt0;
pub mod opt1;
pub mod opt2;
pub mod solver;

pub use direct::{solve_direct, DirectOptions};
pub use objective::worst_case_objective;
pub use solver::{IdueSolver, Model, SolveError};

use idldp_core::levels::LevelPartition;
use idldp_core::notion::RFunction;

/// The `t × t` matrix of pairwise budgets `r(ε_i, ε_j)` over levels.
pub fn pair_budget_matrix(levels: &LevelPartition, r: RFunction) -> Vec<Vec<f64>> {
    let complete = idldp_core::policy::PolicyGraph::complete(levels.num_levels())
        .expect("non-empty by LevelPartition invariant");
    pair_budget_matrix_with_policy(levels, r, &complete)
}

/// Like [`pair_budget_matrix`], but pairs not protected by `policy` get an
/// *infinite* budget — the constraint builders skip them, which is exactly
/// the incomplete-policy-graph relaxation of the paper's Section IV-C.
///
/// # Panics
/// Panics if the policy graph's level count differs from the partition's.
pub fn pair_budget_matrix_with_policy(
    levels: &LevelPartition,
    r: RFunction,
    policy: &idldp_core::policy::PolicyGraph,
) -> Vec<Vec<f64>> {
    let t = levels.num_levels();
    assert_eq!(
        policy.num_levels(),
        t,
        "policy graph / level partition mismatch"
    );
    (0..t)
        .map(|i| {
            (0..t)
                .map(|j| {
                    if policy.is_protected(i, j) {
                        r.combine(
                            levels.level_budget(i).expect("validated"),
                            levels.level_budget(j).expect("validated"),
                        )
                    } else {
                        f64::INFINITY
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use idldp_core::budget::Epsilon;

    #[test]
    fn pair_matrix_min_function() {
        let levels = LevelPartition::new(
            vec![0, 1, 1],
            vec![Epsilon::new(1.0).unwrap(), Epsilon::new(2.0).unwrap()],
        )
        .unwrap();
        let m = pair_budget_matrix(&levels, RFunction::Min);
        assert_eq!(m[0][0], 1.0);
        assert_eq!(m[0][1], 1.0);
        assert_eq!(m[1][0], 1.0);
        assert_eq!(m[1][1], 2.0);
    }

    #[test]
    fn pair_matrix_symmetry() {
        let levels = LevelPartition::new(
            vec![0, 1, 2],
            vec![
                Epsilon::new(0.5).unwrap(),
                Epsilon::new(1.5).unwrap(),
                Epsilon::new(3.0).unwrap(),
            ],
        )
        .unwrap();
        for r in [RFunction::Min, RFunction::Avg, RFunction::Max] {
            let m = pair_budget_matrix(&levels, r);
            for i in 0..3 {
                for j in 0..3 {
                    assert_eq!(m[i][j], m[j][i]);
                }
            }
        }
    }
}
