//! Property tests for the optimization models: feasibility, reductions,
//! dominance, and policy-graph behaviour over randomized instances.

use idldp_core::budget::Epsilon;
use idldp_core::levels::LevelPartition;
use idldp_core::notion::RFunction;
use idldp_core::policy::PolicyGraph;
use idldp_opt::{worst_case_objective, IdueSolver, Model};
use proptest::prelude::*;

/// Strategy: 2–4 strictly increasing budgets in [0.2, 5], with per-level
/// item counts in 1..=20.
fn arb_instance() -> impl Strategy<Value = LevelPartition> {
    (2usize..=4).prop_flat_map(|t| {
        (
            proptest::collection::vec(0.2f64..2.0, t),
            proptest::collection::vec(1usize..=20, t),
        )
            .prop_map(move |(increments, counts)| {
                let mut eps = Vec::with_capacity(t);
                let mut acc = 0.0;
                for inc in increments {
                    acc += inc;
                    eps.push(Epsilon::new(acc).unwrap());
                }
                let mut level_of = Vec::new();
                for (lvl, &c) in counts.iter().enumerate() {
                    level_of.extend(std::iter::repeat_n(lvl, c));
                }
                LevelPartition::new(level_of, eps).unwrap()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Both convex models always return feasible parameters, and the
    /// worst-case objective never beats opt0's superset search… checked the
    /// cheap direction: each convex solution is a feasible point, so opt0's
    /// value (which includes them as seeds) is <= both.
    #[test]
    fn convex_models_feasible_and_opt0_dominates(levels in arb_instance()) {
        let counts = levels.counts();
        let p1 = IdueSolver::new(Model::Opt1).solve(&levels).unwrap();
        prop_assert!(p1.verify(&levels, RFunction::Min, 1e-6).is_ok());
        let p2 = IdueSolver::new(Model::Opt2).solve(&levels).unwrap();
        prop_assert!(p2.verify(&levels, RFunction::Min, 1e-6).is_ok());
        let p0 = IdueSolver::new(Model::Opt0).solve(&levels).unwrap();
        prop_assert!(p0.verify(&levels, RFunction::Min, 1e-6).is_ok());
        let (v0, v1, v2) = (
            worst_case_objective(&p0, counts),
            worst_case_objective(&p1, counts),
            worst_case_objective(&p2, counts),
        );
        prop_assert!(v0 <= v1 + 1e-6, "opt0 {v0} vs opt1 {v1}");
        prop_assert!(v0 <= v2 + 1e-6, "opt0 {v0} vs opt2 {v2}");
    }

    /// opt1 solutions have the RAPPOR structure (a + b = 1); opt2 solutions
    /// the OUE structure (a = 1/2).
    #[test]
    fn structural_reductions(levels in arb_instance()) {
        let p1 = IdueSolver::new(Model::Opt1).solve(&levels).unwrap();
        for i in 0..p1.num_levels() {
            prop_assert!((p1.a()[i] + p1.b()[i] - 1.0).abs() < 1e-9);
        }
        let p2 = IdueSolver::new(Model::Opt2).solve(&levels).unwrap();
        for i in 0..p2.num_levels() {
            prop_assert!((p2.a()[i] - 0.5).abs() < 1e-12);
        }
    }

    /// Scaling every budget up can only improve (or preserve) utility.
    #[test]
    fn utility_monotone_in_budgets(levels in arb_instance(), scale in 1.1f64..2.0) {
        let counts = levels.counts().to_vec();
        let scaled = LevelPartition::new(
            levels.level_map().to_vec(),
            levels
                .budgets()
                .iter()
                .map(|e| Epsilon::new(e.get() * scale).unwrap())
                .collect(),
        )
        .unwrap();
        for model in [Model::Opt1, Model::Opt2] {
            let base = worst_case_objective(
                &IdueSolver::new(model).solve(&levels).unwrap(),
                &counts,
            );
            let better = worst_case_objective(
                &IdueSolver::new(model).solve(&scaled).unwrap(),
                &counts,
            );
            prop_assert!(
                better <= base + 1e-6,
                "{model:?}: scaled {better} vs base {base}"
            );
        }
    }

    /// Removing policy-graph edges can only improve (or preserve) the
    /// objective, and the solution still satisfies the remaining edges.
    #[test]
    fn sparser_policy_never_hurts(levels in arb_instance()) {
        let t = levels.num_levels();
        let counts = levels.counts();
        let complete = IdueSolver::new(Model::Opt1).solve(&levels).unwrap();
        let v_complete = worst_case_objective(&complete, counts);
        // Keep only consecutive-level edges.
        let edges: Vec<(usize, usize)> = (0..t - 1).map(|i| (i, i + 1)).collect();
        let graph = PolicyGraph::from_edges(t, &edges).unwrap();
        let sparse = IdueSolver::new(Model::Opt1)
            .with_policy(graph.clone())
            .solve(&levels)
            .unwrap();
        let v_sparse = worst_case_objective(&sparse, counts);
        prop_assert!(v_sparse <= v_complete + 1e-6);
        prop_assert!(graph
            .verify_params(&sparse, &levels, RFunction::Min, 1e-6)
            .is_ok());
    }

    /// The r-function ordering carries to utility: min is the strictest
    /// notion, so its objective is the worst (largest).
    #[test]
    fn r_function_utility_ordering(levels in arb_instance()) {
        let counts = levels.counts();
        let mut values = Vec::new();
        for r in [RFunction::Min, RFunction::Avg, RFunction::Max] {
            let p = IdueSolver::new(Model::Opt1).with_r(r).solve(&levels).unwrap();
            values.push(worst_case_objective(&p, counts));
        }
        prop_assert!(values[0] >= values[1] - 1e-6, "min {} avg {}", values[0], values[1]);
        prop_assert!(values[1] >= values[2] - 1e-6, "avg {} max {}", values[1], values[2]);
    }
}
