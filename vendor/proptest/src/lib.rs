//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Provides the API subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map` / `prop_filter_map`,
//! range and tuple strategies, [`arbitrary::any`], [`collection::vec`],
//! [`sample::Index`], the [`proptest!`] macro, and `prop_assert!` /
//! `prop_assert_eq!`.
//!
//! Differences from the real crate, accepted for offline builds:
//!
//! * **no shrinking** — a failing case panics with the sampled inputs'
//!   `Debug` form in the assertion message instead of a minimized case;
//! * **deterministic seeding** — case `i` of every test draws from a fixed
//!   SplitMix64 stream, so failures reproduce exactly across runs and
//!   machines (the real crate's persistence files are unnecessary).

use std::ops::{Range, RangeInclusive};

/// The deterministic RNG handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator for one test case.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Chains a dependent strategy.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values mapped to `Some`, retrying otherwise.
    fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
        self,
        whence: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            f,
            whence,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        for _ in 0..1000 {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map `{}` rejected 1000 draws in a row",
            self.whence
        );
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range strategy");
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end - self.start) as usize;
                self.start + rng.next_below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                lo + rng.next_below((hi - lo) as usize + 1) as $t
            }
        }
    )*};
}
int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}
tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::{Strategy, TestRng};

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for super::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> super::sample::Index {
            super::sample::Index::from_unit(rng.next_f64())
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy producing arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Acceptable size arguments for [`vec()`].
    pub trait SizeBounds {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeBounds for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeBounds for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.next_below(self.end - self.start)
        }
    }

    impl SizeBounds for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.next_below(self.end() - self.start() + 1)
        }
    }

    /// Strategy for vectors with element strategy `S`.
    pub struct VecStrategy<S, B> {
        element: S,
        size: B,
    }

    impl<S: Strategy, B: SizeBounds> Strategy for VecStrategy<S, B> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy, B: SizeBounds>(element: S, size: B) -> VecStrategy<S, B> {
        VecStrategy { element, size }
    }
}

/// Index sampling (`any::<prop::sample::Index>()`).
pub mod sample {
    /// A size-independent index: stores a unit-interval position and maps it
    /// into any collection length on demand.
    #[derive(Clone, Copy, Debug, PartialEq)]
    pub struct Index(f64);

    impl Index {
        pub(crate) fn from_unit(u: f64) -> Self {
            Self(u)
        }

        /// The index this represents inside a collection of `len` elements.
        ///
        /// # Panics
        /// Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            ((self.0 * len as f64) as usize).min(len - 1)
        }
    }
}

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Common imports (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::{prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy};
}

/// Asserts inside a `proptest!` body (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(binding in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` seeded draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:tt in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    // Stream keyed by the test name and case index so every
                    // property sees distinct but reproducible inputs.
                    let mut seed = 0xcbf29ce484222325u64;
                    for b in concat!(module_path!(), "::", stringify!($name)).bytes() {
                        seed = (seed ^ b as u64).wrapping_mul(0x100000001b3);
                    }
                    let mut rng = $crate::TestRng::new(seed ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15));
                    let ($($arg,)+) = ($($crate::Strategy::sample(&($strat), &mut rng),)+);
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (f64, usize)> {
        (0.0f64..1.0, 3usize..10)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.5f64..2.5, n in 1usize..=7) {
            prop_assert!((0.5..2.5).contains(&x));
            prop_assert!((1..=7).contains(&n));
        }

        #[test]
        fn combinators_compose(p in arb_pair(), flag in any::<bool>()) {
            let (f, n) = p;
            prop_assert!(f < 1.0 && (3..10).contains(&n));
            let _ = flag;
        }

        #[test]
        fn vec_and_index(v in prop::collection::vec(0u64..100, 2..20), ix in any::<prop::sample::Index>()) {
            prop_assert!(v.len() >= 2 && v.len() < 20);
            let chosen = v[ix.index(v.len())];
            prop_assert!(chosen < 100);
        }

        #[test]
        fn flat_map_dependent(pair in (2usize..6).prop_flat_map(|n| (Just(n), 0usize..n))) {
            let (n, i) = pair;
            prop_assert!(i < n, "i={i} n={n}");
        }

        #[test]
        fn filter_map_retries((a, b) in (0.0f64..1.0, 0.0f64..1.0).prop_filter_map("a<b", |(a, b)| (a < b).then_some((a, b)))) {
            prop_assert!(a < b);
        }
    }

    #[test]
    fn cases_are_reproducible() {
        let mut r1 = crate::TestRng::new(9);
        let mut r2 = crate::TestRng::new(9);
        for _ in 0..100 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
    }
}
