//! Offline stand-in for a readiness poller (the role the `polling` /
//! `mio` crates play): a level-triggered [`Poller`] multiplexing many file
//! descriptors onto one `wait` call, with a cross-thread [`Poller::notify`]
//! wake-up.
//!
//! Only the API subset the workspace's reactor engine uses is provided:
//!
//! * [`Poller::add`] / [`Poller::modify`] / [`Poller::delete`] — register a
//!   raw fd with a read/write interest carrying a caller-chosen `key`.
//! * [`Poller::wait`] — block (with optional timeout) until registered fds
//!   are ready; ready fds are reported as [`Event`]s. Level-triggered: an
//!   fd stays ready until the condition is consumed.
//! * [`Poller::notify`] — wake a concurrent `wait` from any thread (used
//!   for connection handoff and shutdown). Notifications are consumed
//!   internally and surface as a spurious wake-up, never as an [`Event`].
//!
//! Backends: `epoll(7)` on Linux (O(1) readiness, the C10k path) and
//! portable `poll(2)` on other unix systems; both are implemented over
//! direct `extern "C"` bindings to the C library `std` already links, so
//! no crates.io access is needed. Non-unix platforms get a stub whose
//! constructor returns [`std::io::ErrorKind::Unsupported`] — callers fall
//! back to a blocking engine there. On Linux the `poll` backend is still
//! compiled and unit-tested ([`Poller::with_poll_backend`]) so the
//! portable path cannot rot unobserved.

/// A readiness report for (or interest registration of) one registered
/// file descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen identifier handed back verbatim when the fd is ready.
    pub key: usize,
    /// Interested in (or ready for) reading. Hang-ups and errors are
    /// reported as readable so a subsequent `read` observes them.
    pub readable: bool,
    /// Interested in (or ready for) writing.
    pub writable: bool,
}

impl Event {
    /// Read interest only.
    pub fn readable(key: usize) -> Self {
        Self {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Write interest only.
    pub fn writable(key: usize) -> Self {
        Self {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Both interests.
    pub fn all(key: usize) -> Self {
        Self {
            key,
            readable: true,
            writable: true,
        }
    }

    /// No interest (the fd stays registered; errors/hang-ups are still
    /// reported by the epoll backend, and the registration can be
    /// re-armed with [`Poller::modify`]).
    pub fn none(key: usize) -> Self {
        Self {
            key,
            readable: false,
            writable: false,
        }
    }
}

pub use sys::Poller;

#[cfg(unix)]
mod sys {
    use super::Event;
    use std::io;
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    extern "C" {
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    /// Milliseconds for the kernel timeout argument: `None` blocks
    /// forever (-1); sub-millisecond non-zero durations round *up* so a
    /// 100µs timeout cannot busy-spin as 0.
    fn timeout_ms(timeout: Option<Duration>) -> c_int {
        match timeout {
            None => -1,
            Some(d) => {
                let ms = d.as_millis();
                let ms = if ms == 0 && !d.is_zero() { 1 } else { ms };
                c_int::try_from(ms).unwrap_or(c_int::MAX)
            }
        }
    }

    /// Drains a readable notification fd (eventfd or pipe read end)
    /// without caring how many wake-ups coalesced.
    fn drain(fd: RawFd) {
        let mut buf = [0u8; 64];
        unsafe {
            // Nonblocking fd (or poll() just reported readable): one read
            // clears enough to make the next notify() visible again.
            let _ = read(fd, buf.as_mut_ptr().cast(), buf.len());
        }
    }

    #[cfg(target_os = "linux")]
    mod epoll {
        use super::super::Event;
        use super::{drain, timeout_ms};
        use std::io;
        use std::os::raw::{c_int, c_uint};
        use std::os::unix::io::RawFd;
        use std::time::Duration;

        const EPOLL_CLOEXEC: c_int = 0x80000;
        const EPOLL_CTL_ADD: c_int = 1;
        const EPOLL_CTL_DEL: c_int = 2;
        const EPOLL_CTL_MOD: c_int = 3;
        const EPOLLIN: u32 = 0x001;
        const EPOLLOUT: u32 = 0x004;
        const EPOLLERR: u32 = 0x008;
        const EPOLLHUP: u32 = 0x010;
        const EPOLLRDHUP: u32 = 0x2000;
        const EFD_CLOEXEC: c_int = 0x80000;
        const EFD_NONBLOCK: c_int = 0x800;
        /// `epoll_data` value reserved for the internal notify eventfd.
        const NOTIFY_DATA: u64 = u64::MAX;

        /// The kernel's `struct epoll_event`; packed on x86 ABIs (the
        /// layout libc uses).
        #[derive(Clone, Copy)]
        #[repr(C)]
        #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
        struct EpollEvent {
            events: u32,
            data: u64,
        }

        extern "C" {
            fn epoll_create1(flags: c_int) -> c_int;
            fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
            fn epoll_wait(
                epfd: c_int,
                events: *mut EpollEvent,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
            fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        }

        fn check(ret: c_int) -> io::Result<c_int> {
            if ret < 0 {
                Err(io::Error::last_os_error())
            } else {
                Ok(ret)
            }
        }

        pub(super) struct Epoll {
            epfd: RawFd,
            notify_fd: RawFd,
        }

        impl Epoll {
            pub(super) fn new() -> io::Result<Self> {
                let epfd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
                let notify_fd = match check(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) }) {
                    Ok(fd) => fd,
                    Err(e) => {
                        unsafe { super::close(epfd) };
                        return Err(e);
                    }
                };
                let poller = Self { epfd, notify_fd };
                let mut ev = EpollEvent {
                    events: EPOLLIN,
                    data: NOTIFY_DATA,
                };
                check(unsafe { epoll_ctl(poller.epfd, EPOLL_CTL_ADD, notify_fd, &mut ev) })?;
                Ok(poller)
            }

            fn interest_bits(interest: Event) -> u32 {
                let mut events = EPOLLRDHUP;
                if interest.readable {
                    events |= EPOLLIN;
                }
                if interest.writable {
                    events |= EPOLLOUT;
                }
                events
            }

            fn ctl(&self, op: c_int, fd: RawFd, interest: Event) -> io::Result<()> {
                assert_ne!(
                    interest.key as u64, NOTIFY_DATA,
                    "key usize::MAX is reserved for the internal notifier"
                );
                let mut ev = EpollEvent {
                    events: Self::interest_bits(interest),
                    data: interest.key as u64,
                };
                check(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(drop)
            }

            pub(super) fn add(&self, fd: RawFd, interest: Event) -> io::Result<()> {
                self.ctl(EPOLL_CTL_ADD, fd, interest)
            }

            pub(super) fn modify(&self, fd: RawFd, interest: Event) -> io::Result<()> {
                self.ctl(EPOLL_CTL_MOD, fd, interest)
            }

            pub(super) fn delete(&self, fd: RawFd) -> io::Result<()> {
                let mut ev = EpollEvent { events: 0, data: 0 };
                check(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(drop)
            }

            pub(super) fn wait(
                &self,
                events: &mut Vec<Event>,
                timeout: Option<Duration>,
            ) -> io::Result<usize> {
                let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
                let n = unsafe {
                    epoll_wait(
                        self.epfd,
                        buf.as_mut_ptr(),
                        buf.len() as c_int,
                        timeout_ms(timeout),
                    )
                };
                if n < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        return Ok(0); // spurious wake-up; callers re-wait
                    }
                    return Err(err);
                }
                let before = events.len();
                for ev in &buf[..n as usize] {
                    // Copy out of the (possibly packed) kernel struct
                    // before using the fields.
                    let (bits, data) = (ev.events, ev.data);
                    if data == NOTIFY_DATA {
                        drain(self.notify_fd);
                        continue;
                    }
                    events.push(Event {
                        key: data as usize,
                        // Errors and hang-ups surface as readable (and
                        // writable, if write interest could be pending) so
                        // the owner's next read/write observes them.
                        readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                        writable: bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                    });
                }
                Ok(events.len() - before)
            }

            pub(super) fn notify(&self) -> io::Result<()> {
                let one: u64 = 1;
                // A full eventfd counter (EAGAIN) already guarantees a
                // pending wake-up — success either way.
                unsafe {
                    super::write(self.notify_fd, (&raw const one).cast(), 8);
                }
                Ok(())
            }
        }

        impl Drop for Epoll {
            fn drop(&mut self) {
                unsafe {
                    super::close(self.notify_fd);
                    super::close(self.epfd);
                }
            }
        }
    }

    mod posix_poll {
        use super::super::Event;
        use super::{drain, timeout_ms};
        use std::collections::HashMap;
        use std::io;
        use std::os::raw::{c_int, c_short};
        use std::os::unix::io::RawFd;
        use std::sync::Mutex;
        use std::time::Duration;

        const POLLIN: c_short = 0x001;
        const POLLOUT: c_short = 0x004;
        const POLLERR: c_short = 0x008;
        const POLLHUP: c_short = 0x010;

        #[cfg(target_os = "linux")]
        type NfdsT = std::os::raw::c_ulong;
        #[cfg(not(target_os = "linux"))]
        type NfdsT = std::os::raw::c_uint;

        /// POSIX `struct pollfd` (identical layout on every unix).
        #[repr(C)]
        struct PollFd {
            fd: c_int,
            events: c_short,
            revents: c_short,
        }

        extern "C" {
            fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: c_int) -> c_int;
            fn pipe(fds: *mut c_int) -> c_int;
        }

        pub(super) struct PosixPoll {
            registry: Mutex<HashMap<RawFd, Event>>,
            pipe_read: RawFd,
            pipe_write: RawFd,
        }

        impl PosixPoll {
            pub(super) fn new() -> io::Result<Self> {
                let mut fds = [0 as c_int; 2];
                if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
                    return Err(io::Error::last_os_error());
                }
                Ok(Self {
                    registry: Mutex::new(HashMap::new()),
                    pipe_read: fds[0],
                    pipe_write: fds[1],
                })
            }

            fn registry(&self) -> std::sync::MutexGuard<'_, HashMap<RawFd, Event>> {
                self.registry
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
            }

            pub(super) fn add(&self, fd: RawFd, interest: Event) -> io::Result<()> {
                match self.registry().insert(fd, interest) {
                    None => Ok(()),
                    Some(_) => Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        "fd is already registered",
                    )),
                }
            }

            pub(super) fn modify(&self, fd: RawFd, interest: Event) -> io::Result<()> {
                match self.registry().get_mut(&fd) {
                    Some(slot) => {
                        *slot = interest;
                        Ok(())
                    }
                    None => Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        "fd is not registered",
                    )),
                }
            }

            pub(super) fn delete(&self, fd: RawFd) -> io::Result<()> {
                match self.registry().remove(&fd) {
                    Some(_) => Ok(()),
                    None => Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        "fd is not registered",
                    )),
                }
            }

            pub(super) fn wait(
                &self,
                events: &mut Vec<Event>,
                timeout: Option<Duration>,
            ) -> io::Result<usize> {
                // Snapshot the registry into the poll set; the self-pipe
                // read end rides along so notify() can interrupt.
                let mut fds = Vec::new();
                let mut keys = Vec::new();
                fds.push(PollFd {
                    fd: self.pipe_read,
                    events: POLLIN,
                    revents: 0,
                });
                for (&fd, interest) in self.registry().iter() {
                    let mut mask = 0;
                    if interest.readable {
                        mask |= POLLIN;
                    }
                    if interest.writable {
                        mask |= POLLOUT;
                    }
                    fds.push(PollFd {
                        fd,
                        events: mask,
                        revents: 0,
                    });
                    keys.push(interest.key);
                }
                let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as NfdsT, timeout_ms(timeout)) };
                if n < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        return Ok(0);
                    }
                    return Err(err);
                }
                if fds[0].revents & POLLIN != 0 {
                    drain(self.pipe_read);
                }
                let before = events.len();
                for (slot, &key) in fds[1..].iter().zip(&keys) {
                    let got = slot.revents;
                    if got == 0 {
                        continue;
                    }
                    events.push(Event {
                        key,
                        readable: got & (POLLIN | POLLHUP | POLLERR) != 0,
                        writable: got & (POLLOUT | POLLHUP | POLLERR) != 0,
                    });
                }
                Ok(events.len() - before)
            }

            pub(super) fn notify(&self) -> io::Result<()> {
                let byte = 1u8;
                unsafe {
                    super::write(self.pipe_write, (&raw const byte).cast(), 1);
                }
                Ok(())
            }
        }

        impl Drop for PosixPoll {
            fn drop(&mut self) {
                unsafe {
                    super::close(self.pipe_read);
                    super::close(self.pipe_write);
                }
            }
        }
    }

    enum Backend {
        #[cfg(target_os = "linux")]
        Epoll(epoll::Epoll),
        Poll(posix_poll::PosixPoll),
    }

    /// A level-triggered readiness poller. See the crate docs for the
    /// interest/wait/notify contract.
    pub struct Poller {
        backend: Backend,
    }

    impl Poller {
        /// Opens a poller on the platform's best backend (`epoll` on
        /// Linux, `poll(2)` elsewhere).
        ///
        /// # Errors
        /// The underlying syscall's failure (fd exhaustion, mostly).
        pub fn new() -> io::Result<Self> {
            #[cfg(target_os = "linux")]
            {
                Ok(Self {
                    backend: Backend::Epoll(epoll::Epoll::new()?),
                })
            }
            #[cfg(not(target_os = "linux"))]
            Self::with_poll_backend()
        }

        /// Opens a poller on the portable `poll(2)` backend explicitly —
        /// the default everywhere but Linux, exposed so the portable path
        /// is exercised by tests on Linux CI too.
        ///
        /// # Errors
        /// The underlying syscall's failure.
        pub fn with_poll_backend() -> io::Result<Self> {
            Ok(Self {
                backend: Backend::Poll(posix_poll::PosixPoll::new()?),
            })
        }

        /// Registers `fd` with the given interest. The fd must stay open
        /// until [`Self::delete`]; the caller keeps ownership.
        ///
        /// # Errors
        /// Kernel registration failure, or a duplicate registration.
        pub fn add(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            match &self.backend {
                #[cfg(target_os = "linux")]
                Backend::Epoll(b) => b.add(fd, interest),
                Backend::Poll(b) => b.add(fd, interest),
            }
        }

        /// Replaces the interest of a registered fd.
        ///
        /// # Errors
        /// The fd is not registered.
        pub fn modify(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            match &self.backend {
                #[cfg(target_os = "linux")]
                Backend::Epoll(b) => b.modify(fd, interest),
                Backend::Poll(b) => b.modify(fd, interest),
            }
        }

        /// Unregisters an fd (before or after closing is both fine for
        /// epoll as long as no duplicate of the fd remains open; this
        /// workspace deletes before closing).
        ///
        /// # Errors
        /// The fd is not registered.
        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            match &self.backend {
                #[cfg(target_os = "linux")]
                Backend::Epoll(b) => b.delete(fd),
                Backend::Poll(b) => b.delete(fd),
            }
        }

        /// Blocks until at least one registered fd is ready, the timeout
        /// elapses, or [`Self::notify`] is called; appends ready events
        /// and returns how many were appended (0 on timeout, notify, or a
        /// signal interruption — all spurious wake-ups to the caller).
        ///
        /// # Errors
        /// The underlying syscall's failure (not timeouts, not EINTR).
        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            match &self.backend {
                #[cfg(target_os = "linux")]
                Backend::Epoll(b) => b.wait(events, timeout),
                Backend::Poll(b) => b.wait(events, timeout),
            }
        }

        /// Wakes a concurrent (or the next) [`Self::wait`] from any
        /// thread. Coalesces: many notifies may produce one wake-up.
        ///
        /// # Errors
        /// Infallible in practice (a saturated notification still leaves
        /// a wake-up pending); kept fallible for API compatibility.
        pub fn notify(&self) -> io::Result<()> {
            match &self.backend {
                #[cfg(target_os = "linux")]
                Backend::Epoll(b) => b.notify(),
                Backend::Poll(b) => b.notify(),
            }
        }
    }
}

#[cfg(not(unix))]
mod sys {
    use super::Event;
    use std::io;
    use std::time::Duration;

    /// Stub poller for non-unix platforms: construction fails with
    /// [`io::ErrorKind::Unsupported`], so callers fall back to blocking
    /// engines. No other method can ever be reached.
    pub struct Poller {
        never: std::convert::Infallible,
    }

    impl Poller {
        /// Always fails on this platform.
        ///
        /// # Errors
        /// [`io::ErrorKind::Unsupported`], unconditionally.
        pub fn new() -> io::Result<Self> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "no readiness poller backend on this platform",
            ))
        }

        /// Unreachable (construction always fails).
        pub fn add(&self, _fd: i32, _interest: Event) -> io::Result<()> {
            match self.never {}
        }

        /// Unreachable (construction always fails).
        pub fn modify(&self, _fd: i32, _interest: Event) -> io::Result<()> {
            match self.never {}
        }

        /// Unreachable (construction always fails).
        pub fn delete(&self, _fd: i32) -> io::Result<()> {
            match self.never {}
        }

        /// Unreachable (construction always fails).
        pub fn wait(&self, _events: &mut Vec<Event>, _t: Option<Duration>) -> io::Result<usize> {
            match self.never {}
        }

        /// Unreachable (construction always fails).
        pub fn notify(&self) -> io::Result<()> {
            match self.never {}
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::{Event, Poller};
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::{Duration, Instant};

    fn loopback_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    fn backends() -> Vec<(&'static str, Poller)> {
        let mut all = vec![("default", Poller::new().unwrap())];
        if cfg!(target_os = "linux") {
            // On Linux the default is epoll; exercise the portable
            // poll(2) backend too.
            all.push(("poll", Poller::with_poll_backend().unwrap()));
        }
        all
    }

    #[test]
    fn readiness_round_trip() {
        for (name, poller) in backends() {
            let (mut client, mut server) = loopback_pair();
            server.set_nonblocking(true).unwrap();
            poller.add(server.as_raw_fd(), Event::readable(7)).unwrap();

            // Nothing to read yet: a short wait times out empty.
            let mut events = Vec::new();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert_eq!((n, events.len()), (0, 0), "{name}: idle fd reported");

            client.write_all(b"ping").unwrap();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(n, 1, "{name}");
            assert_eq!(events[0].key, 7, "{name}");
            assert!(events[0].readable, "{name}");
            let mut buf = [0u8; 8];
            assert_eq!(server.read(&mut buf).unwrap(), 4, "{name}");

            // Write interest on an unsaturated socket is immediately ready.
            poller.modify(server.as_raw_fd(), Event::all(9)).unwrap();
            events.clear();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.key == 9 && e.writable),
                "{name}: {events:?}"
            );

            poller.delete(server.as_raw_fd()).unwrap();
            events.clear();
            client.write_all(b"more").unwrap();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert_eq!(n, 0, "{name}: deleted fd still reported");
        }
    }

    #[test]
    fn peer_hangup_is_readable() {
        for (name, poller) in backends() {
            let (client, server) = loopback_pair();
            poller.add(server.as_raw_fd(), Event::readable(3)).unwrap();
            drop(client);
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.key == 3 && e.readable),
                "{name}: hang-up must surface as readable, got {events:?}"
            );
            poller.delete(server.as_raw_fd()).unwrap();
        }
    }

    #[test]
    fn notify_wakes_a_blocked_wait() {
        for (name, poller) in backends() {
            let poller = std::sync::Arc::new(poller);
            let waker = std::sync::Arc::clone(&poller);
            let start = Instant::now();
            let handle = std::thread::spawn(move || {
                let mut events = Vec::new();
                // Block "forever" — only notify can end this promptly.
                waker
                    .wait(&mut events, Some(Duration::from_secs(30)))
                    .unwrap()
            });
            std::thread::sleep(Duration::from_millis(50));
            poller.notify().unwrap();
            let n = handle.join().unwrap();
            assert_eq!(n, 0, "{name}: notify is not an event");
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "{name}: notify did not wake the wait"
            );
            // Coalesced notifies never wedge the next wait.
            poller.notify().unwrap();
            poller.notify().unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
        }
    }
}
