//! Offline stand-in for [`rayon`](https://crates.io/crates/rayon).
//!
//! Implements the parallel-iterator API subset the workspace uses
//! (`par_chunks`, `into_par_iter`, `map`, `reduce`, `collect`, `for_each`)
//! on top of `std::thread::scope` with an atomic work-sharing index — no
//! work stealing, but genuinely parallel and panic-propagating.
//!
//! Determinism contract (relied on by `idldp-sim`): items are materialized
//! up front, mapped in any order across threads, and **recombined in item
//! order** — `reduce` folds results left-to-right and `collect` preserves
//! input order. A parallel run therefore returns bit-identical results to a
//! sequential run of the same pipeline whenever the per-item closure is
//! itself deterministic.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Common imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice};
}

/// Number of worker threads: all available cores (min 1).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f` over every item on a scoped worker pool, preserving item order
/// in the returned vector.
fn run_pool<T: Send, U: Send>(items: Vec<T>, f: impl Fn(T) -> U + Sync) -> Vec<U> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("slot lock")
                    .take()
                    .expect("each slot is taken exactly once");
                let result = f(item);
                *out[i].lock().expect("result lock") = Some(result);
            });
        }
    });
    out.into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result lock")
                .expect("worker filled every slot")
        })
        .collect()
}

/// An eager parallel iterator over materialized items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if there are no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Maps every item in parallel.
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        run_pool(self.items, f);
    }
}

/// The result of [`ParIter::map`]; terminal operations execute the pool.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Executes in parallel and collects results in item order.
    pub fn collect<U, C>(self) -> C
    where
        U: Send,
        F: Fn(T) -> U + Sync,
        C: FromIterator<U>,
    {
        run_pool(self.items, self.f).into_iter().collect()
    }

    /// Executes in parallel, then folds the per-item results **in item
    /// order** starting from `identity()` (deterministic even for
    /// non-commutative `op`).
    pub fn reduce<U, ID, OP>(self, identity: ID, op: OP) -> U
    where
        U: Send,
        F: Fn(T) -> U + Sync,
        ID: FnOnce() -> U,
        OP: FnMut(U, U) -> U,
    {
        run_pool(self.items, self.f)
            .into_iter()
            .fold(identity(), op)
    }

    /// Executes in parallel and discards results.
    pub fn for_each_drop<U>(self)
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        let _ = run_pool(self.items, self.f);
    }
}

/// Conversion into a [`ParIter`], mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The item type.
    type Item: Send;

    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Parallel chunking of slices, mirroring `rayon::slice::ParallelSlice`.
pub trait ParallelSlice<T: Sync> {
    /// Splits into contiguous chunks of at most `chunk_size` items (last
    /// chunk may be shorter) processed in parallel.
    ///
    /// # Panics
    /// Panics if `chunk_size == 0`.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_reduce_in_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let total = v
            .par_chunks(97)
            .map(|chunk| chunk.iter().sum::<u64>())
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, (0..10_000).sum::<u64>());
        // Non-commutative combine: concatenation must follow chunk order.
        let joined = v
            .par_chunks(1000)
            .map(|chunk| format!("{}..", chunk[0]))
            .reduce(String::new, |a, b| a + &b);
        assert_eq!(
            joined,
            "0..1000..2000..3000..4000..5000..6000..7000..8000..9000.."
        );
    }

    #[test]
    fn parallel_actually_uses_threads() {
        // Smoke check: closures observe distinct thread ids when cores > 1.
        let ids: std::collections::HashSet<std::thread::ThreadId> = (0..64usize)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|_| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                std::thread::current().id()
            })
            .collect();
        if super::current_num_threads() > 1 {
            assert!(ids.len() > 1, "expected work on multiple threads");
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let v: Vec<usize> = (0..8).collect();
        v.into_par_iter().for_each(|i| {
            if i == 5 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<usize> = Vec::new();
        let out: Vec<usize> = v.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
