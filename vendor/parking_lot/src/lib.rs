//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot):
//! a poison-free [`Mutex`] backed by `std::sync::Mutex`. Only the API the
//! workspace uses (`new`/`lock`/`into_inner`) is provided; a poisoned inner
//! lock is recovered transparently, matching parking_lot's no-poisoning
//! semantics.

use std::sync::PoisonError;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A poison-free mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning.
        assert_eq!(*m.lock(), 0);
    }
}
