//! Offline no-op stand-in for `serde`'s derive macros.
//!
//! The workspace derives `Serialize`/`Deserialize` on its core types so that
//! a future PR can turn on real serialization by swapping this shim for the
//! real crate. Nothing in the workspace *calls* serde APIs yet, so the
//! derives expand to nothing; `#[serde(...)]` attributes are accepted and
//! ignored.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
