//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Mirrors the declaration API (`criterion_group!`, `criterion_main!`,
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkId`], `Bencher::iter*`) with a simple wall-clock harness:
//! each benchmark is auto-calibrated to a target sample duration, timed over
//! `sample_size` samples, and reported as mean / median / min ns per
//! iteration.
//!
//! Beyond the printed table, every run writes a machine-readable summary to
//! `BENCH_<name>.json` (name = the bench binary's file stem; directory
//! overridable with `IDLDP_BENCH_DIR`) so successive PRs can track a
//! performance trajectory without parsing stdout.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// One measured benchmark.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Full benchmark id (`group/function/parameter`).
    pub id: String,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

/// Runs timed closures for one benchmark.
pub struct Bencher<'a> {
    samples: usize,
    target: Duration,
    record: &'a mut Option<(f64, f64, f64, usize, u64)>,
}

impl Bencher<'_> {
    /// Times `f`, calibrating iteration count to the target sample length.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: how many iterations fill the target sample duration?
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.target || iters >= 1 << 24 {
                break;
            }
            let grow = if elapsed.is_zero() {
                16
            } else {
                ((self.target.as_secs_f64() / elapsed.as_secs_f64()).ceil() as u64).clamp(2, 16)
            };
            iters = iters.saturating_mul(grow);
        }
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let median = per_iter[per_iter.len() / 2];
        *self.record = Some((mean, median, per_iter[0], self.samples, iters));
    }

    /// Times `f` with a fresh `setup()` value each iteration (setup excluded
    /// from timing only coarsely: each sample is one iteration).
    pub fn iter_with_setup<S, O, SF: FnMut() -> S, F: FnMut(S) -> O>(
        &mut self,
        mut setup: SF,
        mut f: F,
    ) {
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std_black_box(f(input));
            per_iter.push(start.elapsed().as_nanos() as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let median = per_iter[per_iter.len() / 2];
        *self.record = Some((mean, median, per_iter[0], self.samples, 1));
    }
}

/// The benchmark manager: collects [`BenchRecord`]s and writes the summary.
pub struct Criterion {
    records: Vec<BenchRecord>,
    sample_size: usize,
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            records: Vec::new(),
            sample_size: 15,
            target: Duration::from_millis(20),
        }
    }
}

impl Criterion {
    fn run_one(&mut self, id: String, f: impl FnOnce(&mut Bencher<'_>)) {
        let mut slot = None;
        let mut bencher = Bencher {
            samples: self.sample_size.max(2),
            target: self.target,
            record: &mut slot,
        };
        f(&mut bencher);
        let (mean_ns, median_ns, min_ns, samples, iters_per_sample) =
            slot.expect("benchmark closure must call Bencher::iter*");
        eprintln!("bench {id:<40} mean {mean_ns:>12.1} ns/iter  median {median_ns:>12.1}");
        self.records.push(BenchRecord {
            id,
            mean_ns,
            median_ns,
            min_ns,
            samples,
            iters_per_sample,
        });
    }

    /// Benchmarks a single function.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher<'_>)) -> &mut Self {
        self.run_one(id.to_string(), f);
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// All records measured so far.
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    /// Writes `BENCH_<stem>.json` next to the working directory (or under
    /// `IDLDP_BENCH_DIR`) and prints its path. Called by `criterion_main!`.
    pub fn finalize(&self) {
        let stem = bench_binary_stem();
        let dir = std::env::var("IDLDP_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
        let path = format!("{dir}/BENCH_{stem}.json");
        let mut out = String::from("{\n  \"benchmarks\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let comma = if i + 1 == self.records.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"id\": \"{}\", \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}{}\n",
                r.id.replace('"', "'"),
                r.mean_ns,
                r.median_ns,
                r.min_ns,
                r.samples,
                r.iters_per_sample,
                comma,
            ));
        }
        out.push_str("  ]\n}\n");
        match std::fs::write(&path, out) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

/// File stem of the running bench binary with cargo's `-<hash>` suffix
/// stripped (`mechanisms-1a2b…` → `mechanisms`).
fn bench_binary_stem() -> String {
    let arg0 = std::env::args().next().unwrap_or_default();
    let stem = std::path::Path::new(&arg0)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench");
    match stem.rsplit_once('-') {
        Some((name, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            name.to_string()
        }
        _ => stem.to_string(),
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    fn with_samples(&mut self, id: String, f: impl FnOnce(&mut Bencher<'_>)) {
        let saved = self.criterion.sample_size;
        if let Some(n) = self.sample_size {
            self.criterion.sample_size = n;
        }
        self.criterion.run_one(id, f);
        self.criterion.sample_size = saved;
    }

    /// Benchmarks a function within the group.
    pub fn bench_function<I: std::fmt::Display>(
        &mut self,
        id: I,
        f: impl FnOnce(&mut Bencher<'_>),
    ) -> &mut Self {
        self.with_samples(format!("{}/{}", self.name, id), f);
        self
    }

    /// Benchmarks a function parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher<'_>, &I),
    {
        self.with_samples(format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(&mut self) {}
}

/// Declares a group runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` running the given groups and writing the JSON summary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn records_are_collected() {
        let mut c = Criterion {
            sample_size: 3,
            target: Duration::from_micros(50),
            records: Vec::new(),
        };
        quick(&mut c);
        assert_eq!(c.records().len(), 2);
        assert_eq!(c.records()[1].id, "grp/sum/10");
        assert!(c.records()[0].mean_ns >= 0.0);
    }

    #[test]
    fn stem_strips_cargo_hash() {
        // Indirect check of the suffix heuristic.
        assert_eq!(
            match "mechanisms-0123456789abcdef".rsplit_once('-') {
                Some((n, h)) if h.len() == 16 && h.bytes().all(|b| b.is_ascii_hexdigit()) => n,
                _ => "x",
            },
            "mechanisms"
        );
    }
}
