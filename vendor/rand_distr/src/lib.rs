//! Offline stand-in for the [`rand_distr`](https://crates.io/crates/rand_distr)
//! crate, providing the two distributions this workspace samples:
//!
//! * [`Binomial`] — exact CDF inversion when `min(np, nq)` is small, a
//!   clamped rounded-normal approximation otherwise. The crossover keeps
//!   aggregate-path simulation `O(1)` per draw at paper scale while staying
//!   exact where the normal approximation would be visibly wrong.
//! * [`Zipf`] — exact inverse-CDF sampling via a precomputed cumulative
//!   table (domains in this workspace are ≤ ~45k items, so the table is
//!   cheap and the draws are exact, unlike rejection samplers).

use rand::{Rng, RngCore};

/// A sampling distribution over `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error from invalid distribution parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for ParamError {}

/// The binomial distribution `Binomial(n, p)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

/// Above this expected count the rounded-normal approximation is
/// indistinguishable at the workspace's statistical tolerances and the exact
/// inversion walk would dominate simulation time.
const BINOMIAL_INVERSION_CUTOFF: f64 = 1024.0;

impl Binomial {
    /// Creates `Binomial(n, p)`.
    ///
    /// # Errors
    /// Fails if `p` is outside `[0, 1]` or not finite.
    pub fn new(n: u64, p: f64) -> Result<Self, ParamError> {
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err(ParamError("binomial p must be in [0,1]"));
        }
        Ok(Self { n, p })
    }

    fn sample_inversion<R: RngCore + ?Sized>(&self, rng: &mut R, n: u64, p: f64) -> u64 {
        // Walk the CDF from k = 0; expected O(np) steps with p <= 1/2.
        let q = 1.0 - p;
        let s = p / q;
        let mut pmf = q.powf(n as f64);
        if pmf < f64::MIN_POSITIVE {
            // P(X = 0) underflowed (large n at moderate p): the walk would
            // start from a zero CDF and terminate immediately. The normal
            // approximation is excellent in exactly this regime.
            return self.sample_normal(rng, n, p);
        }
        let mut cdf = pmf;
        let u: f64 = rng.random();
        let mut k = 0u64;
        while u > cdf && k < n {
            k += 1;
            pmf *= s * ((n - k + 1) as f64) / (k as f64);
            cdf += pmf;
            if pmf < f64::MIN_POSITIVE && cdf < u {
                break; // numerical tail exhaustion
            }
        }
        k
    }

    fn sample_normal<R: RngCore + ?Sized>(&self, rng: &mut R, n: u64, p: f64) -> u64 {
        let mean = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        // Box–Muller from two uniforms.
        let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (mean + sd * z).round().clamp(0.0, n as f64) as u64
    }
}

impl Distribution<u64> for Binomial {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        let (n, p) = (self.n, self.p);
        if n == 0 || p == 0.0 {
            return 0;
        }
        if p == 1.0 {
            return n;
        }
        // Work with p <= 1/2 via the complement.
        if p > 0.5 {
            return n - Self { n, p: 1.0 - p }.sample(rng);
        }
        if n as f64 * p <= BINOMIAL_INVERSION_CUTOFF {
            self.sample_inversion(rng, n, p)
        } else {
            self.sample_normal(rng, n, p)
        }
    }
}

/// The Zipf distribution over `{1, …, n}` with exponent `s`:
/// `P(X = k) ∝ k^{-s}`. Samples are returned as `F` (the integer rank cast
/// to float, matching `rand_distr`'s API).
#[derive(Clone, Debug, PartialEq)]
pub struct Zipf<F> {
    /// Cumulative probabilities; `cdf[k-1] = P(X <= k)`.
    cdf: Vec<F>,
}

impl Zipf<f64> {
    /// Creates a Zipf distribution over `{1, …, n}` (n given as a float per
    /// the upstream API) with exponent `s >= 0`.
    ///
    /// # Errors
    /// Fails if `n < 1`, `n` is not an integer count representable in
    /// memory, or `s` is negative/not finite.
    pub fn new(n: f64, s: f64) -> Result<Self, ParamError> {
        if !n.is_finite() || !(1.0..=1e8).contains(&n) {
            return Err(ParamError("zipf n must be in [1, 1e8]"));
        }
        if !s.is_finite() || s < 0.0 {
            return Err(ParamError("zipf exponent must be non-negative"));
        }
        let n = n as usize;
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += (k as f64).powf(-s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Ok(Self { cdf })
    }
}

impl Distribution<f64> for Zipf<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        // First rank whose CDF exceeds u.
        let idx = self.cdf.partition_point(|&c| c <= u);
        (idx.min(self.cdf.len() - 1) + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_var(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        (mean, var)
    }

    #[test]
    fn binomial_validation_and_edges() {
        assert!(Binomial::new(10, 1.5).is_err());
        assert!(Binomial::new(10, -0.1).is_err());
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(Binomial::new(0, 0.5).unwrap().sample(&mut rng), 0);
        assert_eq!(Binomial::new(9, 0.0).unwrap().sample(&mut rng), 0);
        assert_eq!(Binomial::new(9, 1.0).unwrap().sample(&mut rng), 9);
    }

    #[test]
    fn binomial_moments_small_and_large() {
        let mut rng = StdRng::seed_from_u64(2);
        for (n, p) in [(60u64, 0.25), (50_000, 0.37)] {
            let samples: Vec<f64> = (0..20_000)
                .map(|_| Binomial::new(n, p).unwrap().sample(&mut rng) as f64)
                .collect();
            let (mean, var) = mean_var(&samples);
            let (wm, wv) = (n as f64 * p, n as f64 * p * (1.0 - p));
            assert!(
                (mean - wm).abs() < 4.0 * (wv / 20_000.0).sqrt() + 0.05,
                "n={n} mean={mean}"
            );
            assert!((var - wv).abs() / wv < 0.05, "n={n} var={var} want {wv}");
        }
    }

    #[test]
    fn zipf_is_exact_inverse_cdf() {
        let z = Zipf::new(4.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 200_000;
        let mut hist = [0u32; 4];
        for _ in 0..trials {
            let v = z.sample(&mut rng) as usize;
            assert!((1..=4).contains(&v));
            hist[v - 1] += 1;
        }
        // P(k) ∝ 1/k over {1..4}: normalizer 1 + 1/2 + 1/3 + 1/4.
        let norm: f64 = (1..=4).map(|k| 1.0 / k as f64).sum();
        for (k, &h) in hist.iter().enumerate() {
            let want = (1.0 / (k + 1) as f64) / norm;
            let got = h as f64 / trials as f64;
            assert!(
                (got - want).abs() < 0.005,
                "rank {} rate {got} want {want}",
                k + 1
            );
        }
    }

    #[test]
    fn zipf_rejects_bad_parameters() {
        assert!(Zipf::new(0.0, 1.0).is_err());
        assert!(Zipf::new(10.0, -1.0).is_err());
        assert!(Zipf::new(f64::NAN, 1.0).is_err());
    }
}
