//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace builds in environments without a crates.io mirror, so the
//! external RNG dependency is replaced by this vendored shim exposing exactly
//! the API subset the workspace uses:
//!
//! * [`RngCore`] — the object-safe core trait (`next_u32`/`next_u64`/
//!   `fill_bytes`), implemented by every generator;
//! * [`Rng`] — blanket extension trait with the convenience samplers
//!   (`random`, `random_bool`, `random_range`);
//! * [`SeedableRng`] and [`rngs::StdRng`] — a deterministic, portable
//!   xoshiro256++ generator seeded through SplitMix64.
//!
//! The sampling algorithms are deliberately simple (bounded integers use the
//! 128-bit widening-multiply method; floats use the top 53 bits). Streams are
//! stable across platforms and releases — experiment seeds documented in
//! EXPERIMENTS.md stay reproducible. If the real `rand` crate ever replaces
//! this shim, re-recording seeded expectations is the only migration cost.

/// Object-safe core RNG interface.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A uniform `f64` in `[0, 1)` from the top 53 bits of one draw.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable by [`Rng::random`] (the "standard" distribution).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` via 128-bit widening multiply.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span as u64) as $t)
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                self.start + (unit_f64(rng) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                lo + (unit_f64(rng) as $t) * (hi - lo)
            }
        }
    )*};
}
range_float!(f32, f64);

/// Convenience samplers, available on every [`RngCore`] via a blanket impl.
pub trait Rng: RngCore {
    /// Draws a value of a [`StandardSample`] type (uniform bits; floats in
    /// `[0, 1)`).
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        unit_f64(self) < p
    }

    /// Uniform draw from a (half-open or inclusive) range.
    #[inline]
    fn random_range<T, SR: SampleRange<T>>(&mut self, range: SR) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array for the provided generators).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` by expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step (Vigna's reference constants).
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Provided generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    ///
    /// Chosen over a cryptographic generator because every use in this
    /// workspace is a *simulation* stream that must be fast and reproducible;
    /// none of the draws protect secrets (the privacy guarantees of the
    /// mechanisms are distributional, not cryptographic).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (lane, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *lane = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E3779B97F4A7C15, 1, 2, 3];
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, public domain reference).
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_and_nontrivial() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn random_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.random_bool(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn dyn_rng_core_usable() {
        let mut rng = StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.random_range(0usize..10);
        assert!(v < 10);
    }
}
