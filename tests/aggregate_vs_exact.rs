//! Integration: the aggregate (binomial) simulation path is
//! distributionally equivalent to the exact per-user path.
//!
//! DESIGN.md's key performance decision rests on this equivalence; we check
//! the first two moments of the per-bit counts across repeated trials for
//! both the single-item and the item-set pipelines.

use idldp::prelude::*;
use idldp_data::dataset::{ItemSetDataset, SingleItemDataset};
use idldp_num::rng::stream_rng;
use idldp_num::stats::RunningStats;

#[test]
fn single_item_paths_agree_in_distribution() {
    let m = 6;
    let n = 4_000usize;
    let mech = Idue::oue(m, Epsilon::new(1.0).unwrap()).unwrap();
    let items: Vec<u32> = (0..n).map(|i| (i % 3) as u32).collect(); // items 0..3 hot
    let ds = SingleItemDataset::new(items, m);

    let trials = 150u64;
    let mut exact_stats: Vec<RunningStats> = (0..m).map(|_| RunningStats::new()).collect();
    let mut aggregate_stats: Vec<RunningStats> = (0..m).map(|_| RunningStats::new()).collect();
    for t in 0..trials {
        let exact = idldp_sim::exact::run_single_item(&mech, &ds, 1000 + t);
        for (s, &c) in exact_stats.iter_mut().zip(&exact) {
            s.push(c as f64);
        }
        let mut rng = stream_rng(2000, t);
        let agg = idldp_sim::aggregate::run_single_item(&mut rng, &mech, &ds);
        for (s, &c) in aggregate_stats.iter_mut().zip(&agg) {
            s.push(c as f64);
        }
    }

    for i in 0..m {
        let (e, a) = (&exact_stats[i], &aggregate_stats[i]);
        // Means: compare within 5 combined standard errors.
        let se = (e.variance() / trials as f64 + a.variance() / trials as f64).sqrt();
        assert!(
            (e.mean() - a.mean()).abs() < 5.0 * se + 1.0,
            "bit {i}: exact mean {} vs aggregate mean {} (se {se})",
            e.mean(),
            a.mean()
        );
        // Variances: within a factor band (variance of the variance is
        // larger; 150 trials ⇒ be generous).
        let ratio = (e.variance() + 1.0) / (a.variance() + 1.0);
        assert!(
            (0.5..2.0).contains(&ratio),
            "bit {i}: exact var {} vs aggregate var {}",
            e.variance(),
            a.variance()
        );
    }
}

#[test]
fn item_set_paths_agree_in_distribution() {
    let m = 5;
    let l = 2;
    let n = 3_000usize;
    let mech = IduePs::oue_ps(m, Epsilon::new(1.5).unwrap(), l).unwrap();
    let sets: Vec<Vec<u32>> = (0..n)
        .map(|i| match i % 3 {
            0 => vec![0, 1, 2],
            1 => vec![3],
            _ => vec![],
        })
        .collect();
    let ds = ItemSetDataset::new(sets, m);

    let trials = 150u64;
    let bits = m + l;
    let mut exact_stats: Vec<RunningStats> = (0..bits).map(|_| RunningStats::new()).collect();
    let mut aggregate_stats: Vec<RunningStats> = (0..bits).map(|_| RunningStats::new()).collect();
    for t in 0..trials {
        let exact = idldp_sim::exact::run_item_set(&mech, &ds, 3000 + t);
        for (s, &c) in exact_stats.iter_mut().zip(&exact) {
            s.push(c as f64);
        }
        let mut rng = stream_rng(4000, t);
        let agg = idldp_sim::aggregate::run_item_set(&mut rng, &mech, &ds);
        for (s, &c) in aggregate_stats.iter_mut().zip(&agg) {
            s.push(c as f64);
        }
    }

    for i in 0..bits {
        let (e, a) = (&exact_stats[i], &aggregate_stats[i]);
        let se = (e.variance() / trials as f64 + a.variance() / trials as f64).sqrt();
        assert!(
            (e.mean() - a.mean()).abs() < 5.0 * se + 1.0,
            "bit {i}: exact mean {} vs aggregate mean {}",
            e.mean(),
            a.mean()
        );
    }
}

#[test]
fn exact_path_thread_count_invariance() {
    // The exact runner derives per-user RNG streams from the user index, so
    // the result must not depend on how users are sharded. We can't change
    // the thread count directly, but running twice must be bit-identical,
    // and a single-user dataset exercises the one-shard edge.
    let mech = Idue::oue(4, Epsilon::new(1.0).unwrap()).unwrap();
    let single = SingleItemDataset::new(vec![2], 4);
    let a = idldp_sim::exact::run_single_item(&mech, &single, 7);
    let b = idldp_sim::exact::run_single_item(&mech, &single, 7);
    assert_eq!(a, b);
    let big = SingleItemDataset::new((0..10_000).map(|i| (i % 4) as u32).collect(), 4);
    let a = idldp_sim::exact::run_single_item(&mech, &big, 8);
    let b = idldp_sim::exact::run_single_item(&mech, &big, 8);
    assert_eq!(a, b);
}
