//! Integration: the full single-item pipeline across crates.
//!
//! Dataset generation (`idldp-data`) → solver (`idldp-opt`) → mechanism
//! (`idldp-core`) → simulation + estimation (`idldp-sim`), asserting the
//! paper's headline utility ordering and statistical correctness.

use idldp::prelude::*;
use idldp_data::budgets::BudgetScheme;
use idldp_data::synthetic;
use idldp_num::rng::stream_rng;

fn default_levels(m: usize, eps: f64, seed: u64) -> LevelPartition {
    BudgetScheme::paper_default()
        .assign(m, Epsilon::new(eps).unwrap(), &mut stream_rng(seed, 1))
        .unwrap()
}

#[test]
fn idue_beats_ldp_baselines_on_power_law() {
    let seed = 101;
    let ds = synthetic::power_law_with(&mut stream_rng(seed, 0), 50_000, 80, 2.0);
    let levels = default_levels(80, 1.0, seed);
    let results = SingleItemExperiment::new(&ds, levels, 8, seed)
        .run(&[
            MechanismSpec::Rappor,
            MechanismSpec::Oue,
            MechanismSpec::Idue(Model::Opt0),
            MechanismSpec::Idue(Model::Opt1),
            MechanismSpec::Idue(Model::Opt2),
        ])
        .unwrap();
    let mse: Vec<f64> = results.iter().map(|r| r.empirical_mse).collect();
    // Paper ordering: every IDUE variant beats both baselines (large gap —
    // assert on the empirical means).
    for idue in &mse[2..] {
        assert!(idue < &mse[0], "IDUE {idue} vs RAPPOR {}", mse[0]);
        assert!(idue < &mse[1], "IDUE {idue} vs OUE {}", mse[1]);
    }
    // OUE beats RAPPOR, but only by a few percent at ε = 1 — assert the
    // ordering on the deterministic theoretical MSE, not on noisy trials.
    assert!(
        results[1].theoretical_mse < results[0].theoretical_mse,
        "OUE must beat RAPPOR in theoretical MSE"
    );
}

#[test]
fn empirical_matches_theoretical_within_noise() {
    // Fig. 3's "dashed ≈ solid" claim: with enough trials the mean
    // empirical MSE concentrates on the Eq. 9 value.
    let seed = 102;
    let ds = synthetic::uniform_with(&mut stream_rng(seed, 0), 30_000, 60);
    let levels = default_levels(60, 1.5, seed);
    let results = SingleItemExperiment::new(&ds, levels, 30, seed)
        .run(&[MechanismSpec::Oue, MechanismSpec::Idue(Model::Opt1)])
        .unwrap();
    for r in &results {
        let ratio = r.empirical_mse / r.theoretical_mse;
        assert!(
            (0.8..1.2).contains(&ratio),
            "{}: empirical {} vs theoretical {} (ratio {ratio})",
            r.name,
            r.empirical_mse,
            r.theoretical_mse
        );
    }
}

#[test]
fn uniform_budgets_make_idue_equal_oue() {
    // With a single privacy level, opt2 *is* OUE: identical parameters,
    // so identical theoretical MSE.
    let seed = 103;
    let ds = synthetic::uniform_with(&mut stream_rng(seed, 0), 10_000, 30);
    let levels = LevelPartition::uniform(30, Epsilon::new(1.0).unwrap()).unwrap();
    let results = SingleItemExperiment::new(&ds, levels, 3, seed)
        .run(&[MechanismSpec::Oue, MechanismSpec::Idue(Model::Opt2)])
        .unwrap();
    let diff = (results[0].theoretical_mse - results[1].theoretical_mse).abs();
    assert!(
        diff / results[0].theoretical_mse < 1e-3,
        "OUE {} vs IDUE-opt2 {}",
        results[0].theoretical_mse,
        results[1].theoretical_mse
    );
}

#[test]
fn skewed_budget_distribution_amplifies_advantage() {
    // Fig. 4(a)'s claim: the IDUE advantage over OUE grows as more items
    // sit at the loose 4ε level.
    let seed = 104;
    let m = 100;
    let ds = synthetic::power_law_with(&mut stream_rng(seed, 0), 40_000, m, 2.0);
    let mut advantages = Vec::new();
    for weights in [[0.25, 0.25, 0.25, 0.25], [0.05, 0.05, 0.05, 0.85]] {
        let levels = BudgetScheme::with_weights(weights)
            .unwrap()
            .assign(m, Epsilon::new(1.0).unwrap(), &mut stream_rng(seed, 1))
            .unwrap();
        let results = SingleItemExperiment::new(&ds, levels, 6, seed)
            .run(&[MechanismSpec::Oue, MechanismSpec::Idue(Model::Opt0)])
            .unwrap();
        advantages.push(results[0].empirical_mse / results[1].empirical_mse);
    }
    assert!(
        advantages[1] > advantages[0],
        "skewed advantage {} must exceed uniform advantage {}",
        advantages[1],
        advantages[0]
    );
}

#[test]
fn estimates_are_unbiased_at_scale() {
    // Average the estimator over many aggregate trials: the mean estimate
    // must converge to the truth (Theorem 3).
    let seed = 105;
    let m = 20;
    let ds = synthetic::power_law_with(&mut stream_rng(seed, 0), 20_000, m, 2.0);
    let truth = ds.true_counts();
    let levels = default_levels(m, 2.0, seed);
    let params = IdueSolver::new(Model::Opt1).solve(&levels).unwrap();
    let mech = Idue::new(levels, &params).unwrap();
    let est = mech.estimator(ds.num_users() as u64);
    let trials = 60;
    let mut mean_est = vec![0.0; m];
    for t in 0..trials {
        let mut rng = stream_rng(seed, 100 + t);
        let counts = idldp_sim::aggregate::run_single_item(&mut rng, &mech, &ds);
        for (acc, v) in mean_est.iter_mut().zip(est.estimate(&counts).unwrap()) {
            *acc += v / trials as f64;
        }
    }
    for i in 0..m {
        let tol = 4.0 * (est.theoretical_mse_bit(i, truth[i]) / trials as f64).sqrt() + 1.0;
        assert!(
            (mean_est[i] - truth[i]).abs() < tol,
            "item {i}: mean {} truth {} tol {tol}",
            mean_est[i],
            truth[i]
        );
    }
}

#[test]
fn mechanisms_actually_satisfy_their_claimed_notions() {
    use idldp_core::audit::audit_unary_encoding;
    let seed = 106;
    let levels = default_levels(40, 1.0, seed);
    for model in Model::ALL {
        let params = IdueSolver::new(model).solve(&levels).unwrap();
        let mech = Idue::new(levels.clone(), &params).unwrap();
        let notion = mech.intended_notion();
        audit_unary_encoding(mech.unary_encoding(), &notion, 1e-6)
            .unwrap_or_else(|e| panic!("{model:?} violates MinID-LDP: {e}"));
    }
}
