//! Integration: the paper's concrete numerical claims.
//!
//! Table II values, the Lemma 1 sandwich, Theorem 4's exhaustive validity,
//! and the opt-model dominance ordering the evaluation section relies on.

use idldp::prelude::*;
use idldp_core::relations;
use idldp_opt::worst_case_objective;

fn toy_levels() -> LevelPartition {
    LevelPartition::new(
        vec![0, 1, 1, 1, 1],
        vec![
            Epsilon::new(4.0_f64.ln()).unwrap(),
            Epsilon::new(6.0_f64.ln()).unwrap(),
        ],
    )
    .unwrap()
}

#[test]
fn table2_rappor_and_oue_columns() {
    // RAPPOR at ε = ln 4: flip = 1/3, per-bit variance exactly 2n.
    let rappor = Idue::rappor(5, Epsilon::new(4.0_f64.ln()).unwrap()).unwrap();
    let a = rappor.unary_encoding().a()[0];
    let b = rappor.unary_encoding().b()[0];
    assert!((1.0 - a - 1.0 / 3.0).abs() < 1e-12, "flip prob 1/3");
    let var_coeff = b * (1.0 - b) / ((a - b) * (a - b));
    assert!((var_coeff - 2.0).abs() < 1e-9, "Var = 2n per bit");

    // OUE at ε = ln 4: a = 1/2, b = 0.2, variance 1.78n + c*_i.
    let oue = Idue::oue(5, Epsilon::new(4.0_f64.ln()).unwrap()).unwrap();
    let a = oue.unary_encoding().a()[0];
    let b = oue.unary_encoding().b()[0];
    assert!((a - 0.5).abs() < 1e-12);
    assert!((b - 0.2).abs() < 1e-12);
    let k = b * (1.0 - b) / ((a - b) * (a - b));
    assert!((k - 16.0 / 9.0).abs() < 1e-9, "1.78n coefficient");
    let c = (1.0 - a - b) / (a - b);
    assert!((c - 1.0).abs() < 1e-9, "+1.0 c* coefficient");
}

#[test]
fn table2_idue_beats_both_baselines_in_worst_case() {
    let levels = toy_levels();
    let counts = levels.counts(); // [1, 4]
    let idue = IdueSolver::new(Model::Opt0).solve(&levels).unwrap();
    let v_idue = worst_case_objective(&idue, counts);
    // OUE at ln 4 in per-level form.
    let oue = LevelParams::uniform(2, 0.5, 0.2).unwrap();
    let v_oue = worst_case_objective(&oue, counts);
    // RAPPOR at ln 4.
    let rap = LevelParams::uniform(2, 2.0 / 3.0, 1.0 / 3.0).unwrap();
    let v_rap = worst_case_objective(&rap, counts);
    // Paper: 8.68–8.86n vs 9.9n vs 10n. Our solver may do slightly better
    // than the paper's reported solution but must respect the ordering and
    // be within the published ballpark.
    assert!(v_idue < v_oue, "IDUE {v_idue} vs OUE {v_oue}");
    assert!(v_oue < v_rap, "OUE {v_oue} vs RAPPOR {v_rap}");
    assert!((v_rap - 10.0).abs() < 0.1, "RAPPOR total ≈ 10n");
    assert!((v_oue - 9.9).abs() < 0.1, "OUE total ≈ 9.9n");
    assert!(
        (8.0..=8.9).contains(&v_idue),
        "IDUE worst-case total {v_idue} should sit in the paper's 8.68–8.86 range or better"
    );
}

#[test]
fn table2_idue_flip_probabilities_match_paper() {
    let levels = toy_levels();
    let p = IdueSolver::new(Model::Opt0).solve(&levels).unwrap();
    // Paper: flips 0.41 / 0.33 (x=1) and 0.33 / 0.28 (x=0). Allow ±0.03 —
    // the optimum is nearly flat near the solution.
    assert!((1.0 - p.a()[0] - 0.41).abs() < 0.03, "a0 = {}", p.a()[0]);
    assert!((1.0 - p.a()[1] - 0.33).abs() < 0.03, "a1 = {}", p.a()[1]);
    assert!((p.b()[0] - 0.33).abs() < 0.03, "b0 = {}", p.b()[0]);
    assert!((p.b()[1] - 0.28).abs() < 0.03, "b1 = {}", p.b()[1]);
}

#[test]
fn lemma1_sandwich_holds_for_solved_mechanisms() {
    let levels = toy_levels();
    let budgets = levels.item_budget_set();
    let implied = relations::minid_implies_ldp(&budgets);
    assert!((implied - 6.0_f64.ln().min(2.0 * 4.0_f64.ln())).abs() < 1e-12);
    for model in Model::ALL {
        let params = IdueSolver::new(model).solve(&levels).unwrap();
        let mech = Idue::new(levels.clone(), &params).unwrap();
        // The solved mechanism's actual LDP budget obeys the Lemma 1 cap…
        assert!(
            mech.ldp_epsilon() <= implied + 1e-6,
            "{model:?}: {} > {implied}",
            mech.ldp_epsilon()
        );
        // …and (for the discriminating models) genuinely exceeds min(E),
        // i.e. MinID-LDP really did relax plain LDP.
        if model != Model::Opt0 {
            // opt1/opt2 are symmetric structures — still > min(E) here.
            assert!(
                mech.ldp_epsilon() > 4.0_f64.ln() - 1e-6,
                "{model:?} did not use the relaxation"
            );
        }
    }
}

#[test]
fn opt_model_dominance_ordering() {
    // opt0 optimizes the true worst case over a superset of both restricted
    // parameterizations ⇒ opt0 <= min(opt1, opt2) everywhere.
    for (b0, b1) in [(0.5, 1.0), (1.0, 4.0), (2.0, 2.4), (0.7, 2.8)] {
        let levels = LevelPartition::new(
            vec![0, 0, 1, 1, 1, 1, 1, 1],
            vec![Epsilon::new(b0).unwrap(), Epsilon::new(b1).unwrap()],
        )
        .unwrap();
        let counts = levels.counts();
        let v: Vec<f64> = Model::ALL
            .iter()
            .map(|&m| worst_case_objective(&IdueSolver::new(m).solve(&levels).unwrap(), counts))
            .collect();
        assert!(
            v[0] <= v[1] + 1e-6,
            "budgets ({b0},{b1}): opt0 {} opt1 {}",
            v[0],
            v[1]
        );
        assert!(
            v[0] <= v[2] + 1e-6,
            "budgets ({b0},{b1}): opt0 {} opt2 {}",
            v[0],
            v[2]
        );
    }
}

#[test]
fn theorem4_exhaustive_on_three_level_domain() {
    use idldp_core::audit::audit_idue_ps_exhaustive;
    // Three levels over six items, ℓ = 2 → 8 bits: enumerable.
    let levels = LevelPartition::new(
        vec![0, 0, 1, 1, 2, 2],
        vec![
            Epsilon::new(0.6).unwrap(),
            Epsilon::new(1.2).unwrap(),
            Epsilon::new(2.4).unwrap(),
        ],
    )
    .unwrap();
    let params = IdueSolver::new(Model::Opt1).solve(&levels).unwrap();
    let mech = IduePs::new(levels, &params, 2).unwrap();
    let sets: Vec<Vec<usize>> = vec![
        vec![0],
        vec![4],
        vec![0, 2],
        vec![2, 4],
        vec![0, 1, 2, 3],
        vec![],
    ];
    let audits = audit_idue_ps_exhaustive(&mech, &sets, 1e-9).expect("Theorem 4 must hold");
    assert_eq!(audits.len(), 15);
    for a in &audits {
        assert!(a.observed <= a.allowed + 1e-9, "{a:?}");
    }
}

#[test]
fn sequential_composition_theorem2_numeric() {
    // Compose the same IDUE mechanism twice and exhaustively check the
    // doubled MinID-LDP bound on the product mechanism (small domain).
    let levels = LevelPartition::new(
        vec![0, 1, 1],
        vec![Epsilon::new(0.8).unwrap(), Epsilon::new(1.6).unwrap()],
    )
    .unwrap();
    let params = IdueSolver::new(Model::Opt1).solve(&levels).unwrap();
    let mech = Idue::new(levels.clone(), &params).unwrap();
    let ue = mech.unary_encoding();
    // Product mechanism output = pair of outputs; worst ratio over pairs of
    // inputs is the sum of the per-run worst ratios.
    for i in 0..3 {
        for j in 0..3 {
            if i == j {
                continue;
            }
            let single = ue.pair_log_ratio(i, j);
            let composed = 2.0 * single;
            let allowed = 2.0
                * RFunction::Min.combine(
                    levels.item_budget(i).unwrap(),
                    levels.item_budget(j).unwrap(),
                );
            assert!(
                composed <= allowed + 1e-9,
                "pair ({i},{j}): composed {composed} vs allowed {allowed}"
            );
        }
    }
}
