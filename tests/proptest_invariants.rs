//! Property-based tests over the workspace's core invariants.
//!
//! These encode the paper's theorems as properties over *randomized*
//! problem instances: budgets, level structures, parameters and datasets
//! are drawn by proptest, and the invariant must hold for every draw.

use idldp::prelude::*;
use idldp_core::audit;
use idldp_core::relations;
use idldp_num::rng::stream_rng;
use proptest::prelude::*;

/// Strategy: a valid level partition with t in 1..=4 levels over m items.
fn arb_levels() -> impl Strategy<Value = LevelPartition> {
    (1usize..=4, 2usize..=10).prop_flat_map(|(t, per_level)| {
        // Budgets strictly ascending in [0.4, 4.4].
        let budgets: Vec<f64> = (0..t).map(|i| 0.4 + i as f64).collect();
        Just((t, per_level, budgets)).prop_map(|(t, per_level, budgets)| {
            let level_of: Vec<usize> = (0..t * per_level).map(|i| i % t).collect();
            LevelPartition::new(
                level_of,
                budgets.iter().map(|&b| Epsilon::new(b).unwrap()).collect(),
            )
            .unwrap()
        })
    })
}

/// Strategy: arbitrary feasible-domain raw parameters (not necessarily
/// privacy-feasible) with 0 < b < a < 1.
fn arb_ab_pair() -> impl Strategy<Value = (f64, f64)> {
    (0.02f64..0.95, 0.02f64..0.95).prop_filter_map("need b < a", |(x, y)| {
        let (lo, hi) = if x < y { (x, y) } else { (y, x) };
        (hi - lo > 0.02).then_some((hi, lo))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The convex solvers always return Eq. 7-feasible parameters, for any
    /// level structure.
    #[test]
    fn solvers_always_feasible(levels in arb_levels(), use_opt2 in any::<bool>()) {
        let model = if use_opt2 { Model::Opt2 } else { Model::Opt1 };
        let params = IdueSolver::new(model).solve(&levels).unwrap();
        prop_assert!(params.verify(&levels, RFunction::Min, 1e-6).is_ok());
    }

    /// Lemma 1: any mechanism satisfying E-MinID-LDP (by Eq. 7 audit)
    /// satisfies min(max E, 2 min E)-LDP.
    #[test]
    fn lemma1_for_solved_mechanisms(levels in arb_levels()) {
        let params = IdueSolver::new(Model::Opt1).solve(&levels).unwrap();
        let mech = Idue::new(levels.clone(), &params).unwrap();
        let cap = relations::minid_implies_ldp(&levels.item_budget_set());
        prop_assert!(mech.ldp_epsilon() <= cap + 1e-6,
            "ldp eps {} exceeds Lemma 1 cap {}", mech.ldp_epsilon(), cap);
    }

    /// The analytic Eq. 7 bound equals the exhaustive worst case over all
    /// outputs, for arbitrary (not just solved) per-bit parameters.
    #[test]
    fn eq7_is_exact_worst_case(
        p0 in arb_ab_pair(),
        p1 in arb_ab_pair(),
        p2 in arb_ab_pair(),
    ) {
        let ue = UnaryEncoding::new(
            vec![p0.0, p1.0, p2.0],
            vec![p0.1, p1.1, p2.1],
        ).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                if i == j { continue; }
                let exhaustive = audit::ue_worst_ratio_exhaustive(&ue, i, j);
                prop_assert!((exhaustive - ue.pair_log_ratio(i, j)).abs() < 1e-9);
            }
        }
    }

    /// Estimator calibration inverts the expected count map exactly
    /// (the algebra behind Theorem 3's unbiasedness).
    #[test]
    fn estimator_inverts_expectation(
        (a, b) in arb_ab_pair(),
        n in 100u64..100_000,
        frac in 0.0f64..1.0,
    ) {
        let c_star = (n as f64 * frac).round();
        let expected_count = c_star * a + (n as f64 - c_star) * b;
        let est = FrequencyEstimator::new(vec![a], vec![b], n, 1.0).unwrap();
        // Feed the exact expected count (real-valued arithmetic checked via
        // the calibration formula directly).
        let calibrated = (expected_count - n as f64 * b) / (a - b);
        prop_assert!((calibrated - c_star).abs() < 1e-6);
        // And the integer-count path is within rounding of the same value.
        let via_est = est.estimate(&[expected_count.round() as u64]).unwrap()[0];
        prop_assert!((via_est - c_star).abs() <= 1.0 / (a - b) + 1e-9);
    }

    /// Eq. 17 set budgets are at least min(E) and at most ln of the max
    /// e^budget — and monotone in the padding regime.
    #[test]
    fn set_budget_bounds(levels in arb_levels(), l in 1usize..6) {
        let params = IdueSolver::new(Model::Opt1).solve(&levels).unwrap();
        let mech = IduePs::new(levels.clone(), &params, l).unwrap();
        let m = levels.num_items();
        let min_e = levels.min_budget().get();
        let max_e = levels.max_budget().get();
        for size in 1..=m.min(5) {
            let set: Vec<usize> = (0..size).collect();
            let eps_x = mech.set_budget(&set).unwrap();
            prop_assert!(eps_x >= min_e - 1e-9, "set budget {eps_x} below min {min_e}");
            prop_assert!(eps_x <= max_e + 1e-9, "set budget {eps_x} above max {max_e}");
        }
    }

    /// Pad-and-sample always returns an element of x ∪ S, and never a dummy
    /// when |x| >= ℓ.
    #[test]
    fn ps_sample_support(l in 1usize..6, size in 0usize..8, seed in any::<u64>()) {
        let ps = idldp_core::ps::PaddingAndSampling::new(l).unwrap();
        let x: Vec<usize> = (0..size).map(|i| i * 3).collect();
        let mut rng = stream_rng(seed, 0);
        for _ in 0..50 {
            match ps.pad_and_sample(&x, &mut rng) {
                idldp_core::ps::SampledItem::Real(i) => prop_assert!(x.contains(&i)),
                idldp_core::ps::SampledItem::Dummy(j) => {
                    prop_assert!(j < l);
                    prop_assert!(size < l, "dummy sampled although |x| >= l");
                }
            }
        }
    }

    /// MinID composition accounting matches manual addition.
    #[test]
    fn composition_accounting(
        b1 in proptest::collection::vec(0.1f64..3.0, 3),
        b2 in proptest::collection::vec(0.1f64..3.0, 3),
    ) {
        use idldp_core::composition::MinIdLdpAccountant;
        let s1 = BudgetSet::from_values(&b1).unwrap();
        let s2 = BudgetSet::from_values(&b2).unwrap();
        let mut acc = MinIdLdpAccountant::new(3).unwrap();
        acc.compose(&s1).unwrap();
        acc.compose(&s2).unwrap();
        for x in 0..3 {
            prop_assert!((acc.total_for(x).unwrap() - (b1[x] + b2[x])).abs() < 1e-12);
        }
        // Pair bound = min of totals (Theorem 2 through the Min r-function).
        let pb = acc.pair_bound(0, 1).unwrap();
        prop_assert!((pb - (b1[0]+b2[0]).min(b1[1]+b2[1])).abs() < 1e-12);
    }

    /// The worst-case objective (Eq. 10) upper-bounds the true total MSE of
    /// the built mechanism for any data distribution.
    #[test]
    fn worst_case_dominates_true_mse(
        levels in arb_levels(),
        mass_level in 0usize..4,
    ) {
        let params = IdueSolver::new(Model::Opt2).solve(&levels).unwrap();
        let mech = Idue::new(levels.clone(), &params).unwrap();
        let n = 1000u64;
        let est = mech.estimator(n);
        let m = levels.num_items();
        // All users concentrated on one item of the chosen level.
        let item = levels
            .items_in_level(mass_level % levels.num_levels())
            .first()
            .copied()
            .unwrap();
        let mut truth = vec![0.0; m];
        truth[item] = n as f64;
        let actual = est.theoretical_total_mse(&truth).unwrap();
        let worst = est.worst_case_total_mse();
        prop_assert!(actual <= worst + 1e-6, "actual {actual} worst {worst}");
    }
}
