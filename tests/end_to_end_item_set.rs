//! Integration: the item-set pipeline (IDUE-PS) across crates.

use idldp::prelude::*;
use idldp_data::budgets::BudgetScheme;
use idldp_data::kosarak::{generate, KosarakConfig};
use idldp_num::rng::stream_rng;

fn small_config() -> KosarakConfig {
    KosarakConfig {
        users: 20_000,
        pages: 100,
        mean_set_size: 5.0,
        zipf_exponent: 1.2,
        max_set_size: 40,
    }
}

#[test]
fn idue_ps_beats_ps_baselines() {
    let seed = 201;
    let ds = generate(&mut stream_rng(seed, 0), &small_config());
    let levels = BudgetScheme::paper_default()
        .assign(100, Epsilon::new(1.5).unwrap(), &mut stream_rng(seed, 1))
        .unwrap();
    let l = ds.percentile_set_size(0.9).max(1);
    let results = ItemSetExperiment::new(&ds, levels, l, 6, seed)
        .run(&[
            MechanismSpec::Rappor,
            MechanismSpec::Oue,
            MechanismSpec::Idue(Model::Opt0),
        ])
        .unwrap();
    assert!(
        results[2].empirical_mse < results[1].empirical_mse,
        "IDUE-PS {} vs OUE-PS {}",
        results[2].empirical_mse,
        results[1].empirical_mse
    );
    assert!(
        results[2].empirical_mse < results[0].empirical_mse,
        "IDUE-PS {} vs RAPPOR-PS {}",
        results[2].empirical_mse,
        results[0].empirical_mse
    );
}

#[test]
fn small_padding_biases_estimates_downward() {
    // Fig. 5's discussion: with ℓ far below typical set sizes the actual
    // sampling rate is < 1/ℓ, so ℓ·(calibrated counts) underestimates.
    let seed = 202;
    let n = 30_000usize;
    // Every user holds the same 6 items.
    let sets: Vec<Vec<u32>> = (0..n).map(|_| (0..6).collect()).collect();
    let ds = idldp_data::dataset::ItemSetDataset::new(sets, 10);
    let levels = LevelPartition::uniform(10, Epsilon::new(3.0).unwrap()).unwrap();
    let params = IdueSolver::new(Model::Opt2).solve(&levels).unwrap();
    let mech = IduePs::new(levels, &params, 2).unwrap(); // l = 2 << 6
    let mut rng = stream_rng(seed, 0);
    let counts = idldp_sim::aggregate::run_item_set(&mut rng, &mech, &ds);
    let est = mech.estimator(n as u64).estimate(&counts[..10]).unwrap();
    // True count of each held item is n, but sampling rate is 1/6 and the
    // estimator multiplies by l = 2 → expect ≈ n/3.
    for i in 0..6 {
        assert!(
            est[i] < 0.5 * n as f64,
            "item {i} should be underestimated: {}",
            est[i]
        );
        assert!(
            (est[i] - n as f64 / 3.0).abs() < 0.08 * n as f64,
            "item {i}: {} vs expected {}",
            est[i],
            n as f64 / 3.0
        );
    }
}

#[test]
fn adequate_padding_is_unbiased() {
    let seed = 203;
    let n = 30_000usize;
    let sets: Vec<Vec<u32>> = (0..n).map(|_| vec![1, 5]).collect();
    let ds = idldp_data::dataset::ItemSetDataset::new(sets, 8);
    let levels = LevelPartition::uniform(8, Epsilon::new(3.0).unwrap()).unwrap();
    let params = IdueSolver::new(Model::Opt2).solve(&levels).unwrap();
    let mech = IduePs::new(levels, &params, 3).unwrap(); // l = 3 >= |x| = 2
    let trials = 40;
    let mut mean = [0.0; 8];
    for t in 0..trials {
        let mut rng = stream_rng(seed, t);
        let counts = idldp_sim::aggregate::run_item_set(&mut rng, &mech, &ds);
        let est = mech.estimator(n as u64).estimate(&counts[..8]).unwrap();
        for (m, v) in mean.iter_mut().zip(est) {
            *m += v / trials as f64;
        }
    }
    for (i, want) in [(1usize, n as f64), (5, n as f64), (0, 0.0), (7, 0.0)] {
        assert!(
            (mean[i] - want).abs() < 0.04 * n as f64,
            "item {i}: mean {} want {want}",
            mean[i]
        );
    }
}

#[test]
fn padding_sweep_shows_bias_variance_tradeoff() {
    // Total MSE should be large at ℓ = 1 (bias), dip, then grow again with
    // ℓ (variance) — the U-ish shape of Fig. 5.
    let seed = 204;
    let ds = generate(&mut stream_rng(seed, 0), &small_config());
    let levels = BudgetScheme::paper_default()
        .assign(100, Epsilon::new(2.0).unwrap(), &mut stream_rng(seed, 1))
        .unwrap();
    let mut by_l = Vec::new();
    for l in [1usize, 4, 16, 48] {
        let results = ItemSetExperiment::new(&ds, levels.clone(), l, 4, seed)
            .run(&[MechanismSpec::Idue(Model::Opt1)])
            .unwrap();
        by_l.push(results[0].empirical_mse);
    }
    // ℓ = 4 (near the mean set size 5) must beat both extremes.
    assert!(by_l[1] < by_l[0], "l=4 {} vs l=1 {}", by_l[1], by_l[0]);
    assert!(by_l[1] < by_l[3], "l=4 {} vs l=48 {}", by_l[1], by_l[3]);
}

#[test]
fn dummy_bits_do_not_distort_real_estimates() {
    // The estimator ignores dummy-bit counts entirely; estimates over the
    // real domain must be insensitive to l's effect on the dummy bits.
    let seed = 205;
    let n = 20_000usize;
    let sets: Vec<Vec<u32>> = (0..n).map(|i| vec![(i % 4) as u32]).collect();
    let ds = idldp_data::dataset::ItemSetDataset::new(sets, 4);
    let levels = LevelPartition::uniform(4, Epsilon::new(2.0).unwrap()).unwrap();
    let params = IdueSolver::new(Model::Opt2).solve(&levels).unwrap();
    for l in [1usize, 2, 5] {
        let mech = IduePs::new(levels.clone(), &params, l).unwrap();
        let trials = 30;
        let mut mean0 = 0.0;
        for t in 0..trials {
            let mut rng = stream_rng(seed, (l as u64) << 32 | t);
            let counts = idldp_sim::aggregate::run_item_set(&mut rng, &mech, &ds);
            mean0 += mech.estimator(n as u64).estimate(&counts[..4]).unwrap()[0] / trials as f64;
        }
        // Every user holds one item, so sampling rate = 1/max(1, l) and the
        // l-scaling cancels: unbiased at every l.
        assert!(
            (mean0 - n as f64 / 4.0).abs() < 0.06 * n as f64,
            "l={l}: mean {mean0}"
        );
    }
}
