//! # `idldp` — Input-Discriminative Local Differential Privacy
//!
//! A Rust implementation of
//!
//! > Xiaolan Gu, Ming Li, Li Xiong, Yang Cao.
//! > *Providing Input-Discriminative Protection for Local Differential
//! > Privacy.* IEEE ICDE 2020 (arXiv:1911.01402).
//!
//! Standard ε-LDP protects every input with the same budget, so deployments
//! must calibrate to the most sensitive input and over-protect everything
//! else. **ID-LDP** assigns each input its own budget ε_x and bounds each
//! *pair* of inputs by a function of the two budgets; **MinID-LDP** uses
//! `min(ε_x, ε_x')`. The **IDUE** mechanism (unary encoding with per-level
//! bit probabilities, chosen by convex/non-convex optimization) exploits
//! this to deliver strictly better frequency-estimation utility than
//! RAPPOR/OUE at equal protection for the sensitive inputs; **IDUE-PS**
//! extends it to item-set data via Padding-and-Sampling.
//!
//! This crate is a facade over the workspace:
//!
//! * [`core`] ([`idldp_core`]) — notions, mechanisms, estimation, auditing;
//! * [`opt`] ([`idldp_opt`]) — the opt0/opt1/opt2 parameter solvers;
//! * [`data`] ([`idldp_data`]) — synthetic datasets and surrogate
//!   generators for Kosarak/Retail/MSNBC;
//! * [`sim`] ([`idldp_sim`]) — client/server simulation and experiment
//!   runners;
//! * [`stream`] ([`idldp_stream`]) — online aggregation: mergeable sharded
//!   accumulators, seeded report streams, snapshot checkpointing, and
//!   online heavy-hitter tracking;
//! * [`num`] ([`idldp_num`]) — the numerical substrate (solvers, samplers).
//!
//! ## Quickstart
//!
//! ```
//! use idldp::prelude::*;
//! use rand::SeedableRng;
//!
//! // 1. Declare the domain: 5 medical answers, one highly sensitive.
//! let levels = LevelPartition::new(
//!     vec![0, 1, 1, 1, 1], // item 0 = "HIV", items 1..5 = common symptoms
//!     vec![
//!         Epsilon::new(4.0_f64.ln()).unwrap(),
//!         Epsilon::new(6.0_f64.ln()).unwrap(),
//!     ],
//! )
//! .unwrap();
//!
//! // 2. Solve for the optimal IDUE parameters and build the mechanism.
//! let params = IdueSolver::new(Model::Opt0).solve(&levels).unwrap();
//! let mechanism = Idue::new(levels, &params).unwrap();
//!
//! // 3. Clients perturb locally…
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let n = 10_000u64;
//! let mut counts = vec![0u64; 5];
//! for user in 0..n {
//!     let item = (user % 5) as usize; // each user's true answer
//!     let report = mechanism.perturb_item(item, &mut rng);
//!     for (c, bit) in counts.iter_mut().zip(&report) {
//!         *c += *bit as u64;
//!     }
//! }
//!
//! // 4. …and the server calibrates unbiased frequency estimates.
//! let estimates = mechanism.estimator(n).estimate(&counts).unwrap();
//! assert_eq!(estimates.len(), 5);
//! ```

pub use idldp_core as core;
pub use idldp_data as data;
pub use idldp_num as num;
pub use idldp_opt as opt;
pub use idldp_sim as sim;
pub use idldp_stream as stream;

/// The most common imports in one place.
pub mod prelude {
    pub use idldp_core::budget::{BudgetSet, Epsilon};
    pub use idldp_core::estimator::FrequencyEstimator;
    pub use idldp_core::idue::Idue;
    pub use idldp_core::idue_ps::IduePs;
    pub use idldp_core::levels::LevelPartition;
    pub use idldp_core::notion::{Notion, RFunction};
    pub use idldp_core::olh::OptimalLocalHashing;
    pub use idldp_core::params::LevelParams;
    pub use idldp_core::report::{ReportData, ReportShape};
    pub use idldp_core::snapshot::AccumulatorSnapshot;
    pub use idldp_core::subset::SubsetSelection;
    pub use idldp_core::ue::UnaryEncoding;
    pub use idldp_opt::{IdueSolver, Model};
    pub use idldp_sim::{ItemSetExperiment, MechanismSpec, SingleItemExperiment};
    pub use idldp_stream::{
        BitReportAccumulator, HeavyHitterTracker, Report, ReportAccumulator, SeededReportStream,
        ShapedAccumulator, ShardedAccumulator, TrackerMode,
    };
}
